package analyzers

import (
	"go/ast"
	"go/types"
)

// SelAlias enforces the batch-sharing contract between operators: a
// batch pulled from a child (or received as a parameter) is the
// child's property, and its Sel selection vector usually aliases a
// buffer the child reuses across Next calls. Writing through that
// slice — element assignment, appending onto its backing array, or
// truncating it in place — corrupts the child's state for the next
// batch (the core.Limit bug class). The canonical fix is a private
// copy: allocate a fresh slice, copy the live prefix, and install that
// with a plain field assignment.
//
// A write is allowed once the function has re-owned the field by
// assigning a freshly allocated slice (or nil) to it.
var SelAlias = &Analyzer{
	Name: "selalias",
	Doc: "operators must not mutate a child batch's shared Sel slice in " +
		"place; copy it first",
	Run: runSelAlias,
}

func runSelAlias(pass *Pass) {
	mut := selMutators(pass)
	for _, fd := range funcDecls(pass) {
		checkSelAliasFunc(pass, fd, mut)
	}
}

// paramKey identifies one slice parameter of an in-package function.
type paramKey struct {
	fn  *types.Func
	idx int
}

// selMutators computes, by fixpoint over the package's call graph,
// which function parameters are written through (index assignment,
// append onto the same backing array, or forwarding to another
// mutator). Cross-package callees are assumed read-only — the engine's
// kernel primitives take destination buffers explicitly, so a shared
// Sel handed across a package boundary is already a design smell the
// other rules catch.
func selMutators(pass *Pass) map[paramKey]bool {
	decls := funcDecls(pass)
	mutates := map[paramKey]bool{}
	// edges[to] lists params that become mutators when `to` is one.
	edges := map[paramKey][]paramKey{}
	for fn, fd := range decls {
		paramIdx := map[types.Object]int{}
		i := 0
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := objOf(pass.Info, name); obj != nil {
					if _, ok := obj.Type().Underlying().(*types.Slice); ok {
						paramIdx[obj] = i
					}
				}
				i++
			}
		}
		if len(paramIdx) == 0 {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for li, lhs := range n.Lhs {
					if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
						if id, ok := ast.Unparen(ix.X).(*ast.Ident); ok {
							if idx, ok := paramIdx[objOf(pass.Info, id)]; ok {
								mutates[paramKey{fn, idx}] = true
							}
						}
					}
					// p = append(p, ...) writes the shared backing array
					// whenever capacity allows.
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && li < len(n.Rhs) {
						if idx, ok := paramIdx[objOf(pass.Info, id)]; ok {
							if base, ok := appendBase(n.Rhs[li]); ok {
								if bid := rootIdent(base); bid != nil && objOf(pass.Info, bid) == objOf(pass.Info, id) {
									mutates[paramKey{fn, idx}] = true
								}
							}
						}
					}
				}
			case *ast.CallExpr:
				callee := calleeFunc(pass.Info, n)
				if callee == nil {
					return true
				}
				if _, inPkg := decls[callee]; !inPkg {
					return true
				}
				for ai, arg := range n.Args {
					id := rootIdent(arg)
					if id == nil {
						continue
					}
					if idx, ok := paramIdx[objOf(pass.Info, id)]; ok {
						to := paramKey{callee, ai}
						edges[to] = append(edges[to], paramKey{fn, idx})
					}
				}
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for to, froms := range edges {
			if !mutates[to] {
				continue
			}
			for _, from := range froms {
				if !mutates[from] {
					mutates[from] = true
					changed = true
				}
			}
		}
	}
	return mutates
}

// appendBase returns the first argument of an append call.
func appendBase(e ast.Expr) (ast.Expr, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || calleeName(call) != "append" || len(call.Args) == 0 {
		return nil, false
	}
	return call.Args[0], true
}

func checkSelAliasFunc(pass *Pass, fd *ast.FuncDecl, mut map[paramKey]bool) {
	foreign := map[types.Object]bool{} // batches owned by someone else
	owned := map[types.Object]bool{}   // foreign batches whose Sel was re-owned
	fresh := map[types.Object]bool{}   // locally allocated slices

	// Batch parameters arrive owned by the caller.
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := objOf(pass.Info, name); obj != nil && isBatch(obj.Type()) {
				foreign[obj] = true
			}
		}
	}

	// selBase resolves the identifier behind <batch>.Sel if the batch is
	// a tracked foreign variable still aliasing its child's slice.
	hotSel := func(e ast.Expr) (types.Object, bool) {
		base, ok := asSelOfBatch(pass.Info, e)
		if !ok {
			return nil, false
		}
		id, ok := ast.Unparen(base).(*ast.Ident)
		if !ok {
			return nil, false
		}
		obj := objOf(pass.Info, id)
		return obj, obj != nil && foreign[obj] && !owned[obj]
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for li, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[li]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				lhs := ast.Unparen(lhs)
				if id, ok := lhs.(*ast.Ident); ok && rhs != nil {
					obj := objOf(pass.Info, id)
					if obj == nil {
						continue
					}
					switch r := ast.Unparen(rhs).(type) {
					case *ast.CallExpr:
						if li == 0 && isOperatorNextResult(pass.Info, r) {
							foreign[obj] = true // pulled from a child operator
						}
						if calleeName(r) == "make" {
							fresh[obj] = true
						}
					case *ast.Ident:
						if other := objOf(pass.Info, r); other != nil {
							if foreign[other] && !owned[other] {
								foreign[obj] = true
							}
							if fresh[other] {
								fresh[obj] = true
							}
						}
					}
					continue
				}
				// <batch>.Sel = ...
				if obj, hot := hotSel(lhs); hot && rhs != nil {
					switch r := ast.Unparen(rhs).(type) {
					case *ast.CallExpr:
						if base, ok := appendBase(rhs); ok {
							if bobj, sameBatch := hotSelRoot(pass, base, obj); sameBatch && bobj == obj {
								pass.Reportf(n.Pos(),
									"append reuses the child batch's shared Sel backing array; copy into a fresh slice first")
								continue
							}
							// append onto a fresh base re-owns the field
							if bid := rootIdent(base); bid != nil && fresh[objOf(pass.Info, bid)] {
								owned[obj] = true
								continue
							}
						}
						if calleeName(r) == "make" {
							owned[obj] = true
							continue
						}
						owned[obj] = true // call results are fresh values
					case *ast.SliceExpr:
						if bobj, sameBatch := hotSelRoot(pass, r, obj); sameBatch && bobj == obj {
							pass.Reportf(n.Pos(),
								"truncates the child batch's shared Sel in place; install a private copy instead")
							continue
						}
					case *ast.Ident:
						if r.Name == "nil" || fresh[objOf(pass.Info, r)] {
							owned[obj] = true
						}
					}
					continue
				}
				// <batch>.Sel[i] = ...
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					if _, hot := hotSel(ix.X); hot {
						pass.Reportf(n.Pos(),
							"writes through the child batch's shared Sel slice; the child reuses it on its next batch")
					}
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok {
				if _, hot := hotSel(ix.X); hot {
					pass.Reportf(n.Pos(),
						"writes through the child batch's shared Sel slice; the child reuses it on its next batch")
				}
			}
		case *ast.CallExpr:
			callee := calleeFunc(pass.Info, n)
			if callee == nil {
				return true
			}
			for ai, arg := range n.Args {
				target := ast.Unparen(arg)
				if sl, ok := target.(*ast.SliceExpr); ok {
					target = ast.Unparen(sl.X)
				}
				if _, hot := hotSel(target); hot && mut[paramKey{callee, ai}] {
					pass.Reportf(arg.Pos(),
						"passes the child batch's shared Sel to %s, which mutates its argument; pass a private copy",
						callee.Name())
				}
			}
		}
		return true
	})
}

// hotSelRoot reports whether e is rooted in want's .Sel selector
// (b.Sel, b.Sel[:k], b.Sel[i:j]), returning the batch object.
func hotSelRoot(pass *Pass, e ast.Expr, want types.Object) (types.Object, bool) {
	target := ast.Unparen(e)
	if sl, ok := target.(*ast.SliceExpr); ok {
		target = ast.Unparen(sl.X)
	}
	base, ok := asSelOfBatch(pass.Info, target)
	if !ok {
		return nil, false
	}
	id, ok := ast.Unparen(base).(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := objOf(pass.Info, id)
	return obj, obj == want
}
