package algebra

import "vectorwise/internal/vtypes"

// Scan-filter extraction: the planner's data-skipping rewrite. A
// SelectNode sitting directly above a ScanNode holds exactly the
// single-table conjuncts predicate pushdown placed there; the sargable
// ones among them — column-vs-constant shapes a scan can both evaluate
// on decompressed chunks and turn into row-group min/max pruning — move
// into ScanNode.Filters, and only the residual (column-vs-column
// comparisons, LIKE, OR trees, IS NULL, ...) stays behind as a Select.
//
// Parameter slots count as constants: a cached plan template keeps the
// Param in the filter, BindParams substitutes the typed literal at bind
// time, and the cross-compiler synthesizes the prune function from the
// bound literal — so a plan-cache hit prunes with the execution's own
// bound values.

// Sargable reports whether s is a scan-pushable conjunct: a comparison
// between one column and a literal/parameter, a literal BETWEEN, or a
// literal IN, over a column of kinds the chunk statistics cover.
func Sargable(s Scalar) bool {
	switch t := s.(type) {
	case *Cmp:
		if col, ok := t.L.(*ColRef); ok && isConstScalar(t.R) {
			return statKind(col.K)
		}
		if col, ok := t.R.(*ColRef); ok && isConstScalar(t.L) {
			return statKind(col.K)
		}
		return false
	case *Between:
		col, ok := t.In.(*ColRef)
		return ok && statKind(col.K)
	case *In:
		col, ok := t.In.(*ColRef)
		return ok && statKind(col.K)
	default:
		return false
	}
}

// isConstScalar reports whether s is execution-time constant: a literal
// now, or a parameter slot that binds to one before compilation.
func isConstScalar(s Scalar) bool {
	switch s.(type) {
	case *Lit, *Param:
		return true
	default:
		return false
	}
}

// statKind reports whether chunk statistics exist for a column kind
// (booleans carry none).
func statKind(k vtypes.Kind) bool {
	switch k.StorageClass() {
	case vtypes.ClassI64, vtypes.ClassF64, vtypes.ClassStr:
		return true
	default:
		return false
	}
}

// PushFiltersIntoScans rewrites a plan so that sargable conjuncts of
// every Select-directly-above-Scan move into the scan's Filters. Nodes
// are rebuilt, never mutated, so a cached template and its bound
// executions never share rewritten state with callers holding the
// input. Scans that gain filters are fresh copies; a Select whose
// conjuncts all move disappears entirely.
func PushFiltersIntoScans(n Node) Node {
	switch t := n.(type) {
	case *SelectNode:
		in := PushFiltersIntoScans(t.Input)
		scan, ok := in.(*ScanNode)
		if !ok {
			if in == t.Input {
				return t
			}
			return &SelectNode{Input: in, Pred: t.Pred}
		}
		var filters, residual []Scalar
		for _, c := range splitAnd(t.Pred) {
			if Sargable(c) {
				filters = append(filters, c)
			} else {
				residual = append(residual, c)
			}
		}
		if len(filters) == 0 {
			if in == t.Input {
				return t
			}
			return &SelectNode{Input: in, Pred: t.Pred}
		}
		clone := *scan
		clone.Filters = append(append([]Scalar(nil), scan.Filters...), filters...)
		if len(residual) == 0 {
			return &clone
		}
		var pred Scalar
		if len(residual) == 1 {
			pred = residual[0]
		} else {
			pred = &And{Preds: residual}
		}
		return &SelectNode{Input: &clone, Pred: pred}
	case *ProjectNode:
		in := PushFiltersIntoScans(t.Input)
		if in == t.Input {
			return t
		}
		return &ProjectNode{Input: in, Exprs: t.Exprs, Names: t.Names}
	case *AggNode:
		in := PushFiltersIntoScans(t.Input)
		if in == t.Input {
			return t
		}
		return &AggNode{Input: in, GroupBy: t.GroupBy, Aggs: t.Aggs, Names: t.Names, Partial: t.Partial}
	case *JoinNode:
		l, r := PushFiltersIntoScans(t.Left), PushFiltersIntoScans(t.Right)
		if l == t.Left && r == t.Right {
			return t
		}
		return &JoinNode{Left: l, Right: r, LeftKeys: t.LeftKeys, RightKeys: t.RightKeys, Type: t.Type}
	case *SortNode:
		in := PushFiltersIntoScans(t.Input)
		if in == t.Input {
			return t
		}
		return &SortNode{Input: in, Keys: t.Keys}
	case *LimitNode:
		in := PushFiltersIntoScans(t.Input)
		if in == t.Input {
			return t
		}
		return &LimitNode{Input: in, N: t.N}
	case *UnionAllNode:
		changed := false
		inputs := make([]Node, len(t.Inputs))
		for i, c := range t.Inputs {
			inputs[i] = PushFiltersIntoScans(c)
			if inputs[i] != c {
				changed = true
			}
		}
		if !changed {
			return t
		}
		return &UnionAllNode{Inputs: inputs}
	default:
		return n
	}
}

// FiltersPred re-assembles a scan's filter conjuncts into one boolean
// scalar — the form serial engines evaluate as an ordinary selection.
func FiltersPred(filters []Scalar) Scalar {
	if len(filters) == 1 {
		return filters[0]
	}
	return &And{Preds: filters}
}

// splitAnd flattens nested conjunctions into a conjunct list.
func splitAnd(s Scalar) []Scalar {
	if a, ok := s.(*And); ok {
		var out []Scalar
		for _, p := range a.Preds {
			out = append(out, splitAnd(p)...)
		}
		return out
	}
	return []Scalar{s}
}
