package algebra

import (
	"fmt"
	"strings"

	"vectorwise/internal/vtypes"
)

// Scalar is an engine-neutral scalar expression with a resolved kind.
type Scalar interface {
	Kind() vtypes.Kind
	String() string
}

// ColRef references an input column by position.
type ColRef struct {
	Idx int
	K   vtypes.Kind
}

// Kind implements Scalar.
func (c *ColRef) Kind() vtypes.Kind { return c.K }
func (c *ColRef) String() string    { return fmt.Sprintf("#%d", c.Idx) }

// Lit is a literal.
type Lit struct{ Val vtypes.Value }

// Kind implements Scalar.
func (l *Lit) Kind() vtypes.Kind { return l.Val.Kind }
func (l *Lit) String() string    { return l.Val.String() }

// Param is an unbound statement parameter (`?` / `$N` in SQL). The
// planner resolves K from the surrounding expression (a parameter
// compared with or added to a typed scalar adopts its kind), so a plan
// holding Params is a reusable template: BindParams substitutes typed
// literals without re-planning. A Param must not reach the
// cross-compiler unbound.
type Param struct {
	// Idx is the 1-based parameter ordinal.
	Idx int
	K   vtypes.Kind
}

// Kind implements Scalar.
func (p *Param) Kind() vtypes.Kind { return p.K }
func (p *Param) String() string    { return fmt.Sprintf("$%d", p.Idx) }

// ArithOp mirrors expr.ArithOp.
type ArithOp uint8

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
)

func (o ArithOp) String() string { return [...]string{"+", "-", "*", "/"}[o] }

// Arith is binary arithmetic; K is resolved at construction.
type Arith struct {
	Op   ArithOp
	L, R Scalar
	K    vtypes.Kind
}

// NewArith infers the result kind with the same widening rules as the
// vectorized expression compiler.
func NewArith(op ArithOp, l, r Scalar) (*Arith, error) {
	lk, rk := l.Kind(), r.Kind()
	var k vtypes.Kind
	switch {
	case lk == vtypes.KindDate && rk == vtypes.KindDate && op == OpSub:
		k = vtypes.KindI64
	case lk == vtypes.KindDate && rk.StorageClass() == vtypes.ClassI64:
		k = vtypes.KindDate
	case lk == vtypes.KindF64 || rk == vtypes.KindF64:
		if !lk.Numeric() && lk != vtypes.KindDate || !rk.Numeric() && rk != vtypes.KindDate {
			return nil, fmt.Errorf("algebra: %v %v %v ill-typed", lk, op, rk)
		}
		k = vtypes.KindF64
	case lk.StorageClass() == vtypes.ClassI64 && rk.StorageClass() == vtypes.ClassI64:
		k = vtypes.KindI64
	default:
		return nil, fmt.Errorf("algebra: %v %v %v ill-typed", lk, op, rk)
	}
	return &Arith{Op: op, L: l, R: r, K: k}, nil
}

// Kind implements Scalar.
func (a *Arith) Kind() vtypes.Kind { return a.K }
func (a *Arith) String() string    { return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R) }

// CmpOp mirrors expr.CmpOp.
type CmpOp uint8

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

func (o CmpOp) String() string { return [...]string{"=", "<>", "<", "<=", ">", ">="}[o] }

// Cmp is a boolean comparison.
type Cmp struct {
	Op   CmpOp
	L, R Scalar
}

// Kind implements Scalar.
func (c *Cmp) Kind() vtypes.Kind { return vtypes.KindBool }
func (c *Cmp) String() string    { return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R) }

// Between is lo <= e <= hi over literals.
type Between struct {
	In     Scalar
	Lo, Hi vtypes.Value
}

// Kind implements Scalar.
func (b *Between) Kind() vtypes.Kind { return vtypes.KindBool }
func (b *Between) String() string {
	return fmt.Sprintf("(%s between %s and %s)", b.In, b.Lo, b.Hi)
}

// Like is a SQL LIKE match.
type Like struct {
	In      Scalar
	Pattern string
	Negate  bool
}

// Kind implements Scalar.
func (l *Like) Kind() vtypes.Kind { return vtypes.KindBool }
func (l *Like) String() string {
	n := ""
	if l.Negate {
		n = " not"
	}
	return fmt.Sprintf("(%s%s like %q)", l.In, n, l.Pattern)
}

// In is membership in a literal list.
type In struct {
	In   Scalar
	List []vtypes.Value
}

// Kind implements Scalar.
func (i *In) Kind() vtypes.Kind { return vtypes.KindBool }
func (i *In) String() string {
	var parts []string
	for _, v := range i.List {
		parts = append(parts, v.String())
	}
	return fmt.Sprintf("(%s in [%s])", i.In, strings.Join(parts, ","))
}

// And is a conjunction.
type And struct{ Preds []Scalar }

// Kind implements Scalar.
func (a *And) Kind() vtypes.Kind { return vtypes.KindBool }
func (a *And) String() string {
	var parts []string
	for _, p := range a.Preds {
		parts = append(parts, p.String())
	}
	return "(" + strings.Join(parts, " and ") + ")"
}

// Or is a disjunction.
type Or struct{ Preds []Scalar }

// Kind implements Scalar.
func (o *Or) Kind() vtypes.Kind { return vtypes.KindBool }
func (o *Or) String() string {
	var parts []string
	for _, p := range o.Preds {
		parts = append(parts, p.String())
	}
	return "(" + strings.Join(parts, " or ") + ")"
}

// Not negates a boolean scalar.
type Not struct{ In Scalar }

// Kind implements Scalar.
func (n *Not) Kind() vtypes.Kind { return vtypes.KindBool }
func (n *Not) String() string    { return fmt.Sprintf("(not %s)", n.In) }

// Case is CASE WHEN cond THEN a ELSE b END.
type Case struct {
	Cond, Then, Else Scalar
	K                vtypes.Kind
}

// NewCase resolves the arm kind (mixed numerics widen to float).
func NewCase(cond, then, el Scalar) (*Case, error) {
	if cond.Kind() != vtypes.KindBool {
		return nil, fmt.Errorf("algebra: CASE condition must be boolean")
	}
	k := then.Kind()
	if then.Kind() != el.Kind() {
		if then.Kind().Numeric() && el.Kind().Numeric() {
			k = vtypes.KindF64
		} else {
			return nil, fmt.Errorf("algebra: CASE arms disagree: %v vs %v", then.Kind(), el.Kind())
		}
	}
	return &Case{Cond: cond, Then: then, Else: el, K: k}, nil
}

// Kind implements Scalar.
func (c *Case) Kind() vtypes.Kind { return c.K }
func (c *Case) String() string {
	return fmt.Sprintf("(case when %s then %s else %s end)", c.Cond, c.Then, c.Else)
}

// YearOf extracts the year of a date.
type YearOf struct{ In Scalar }

// Kind implements Scalar.
func (y *YearOf) Kind() vtypes.Kind { return vtypes.KindI64 }
func (y *YearOf) String() string    { return fmt.Sprintf("year(%s)", y.In) }

// IsNull tests the NULL indicator of a nullable column. The rewriter's
// NULL decomposition replaces it with a reference to the indicator
// column before execution; engines that see it un-rewritten evaluate it
// via boxed values (the slow path experiment T5 measures).
type IsNull struct {
	In     Scalar
	Negate bool
}

// Kind implements Scalar.
func (i *IsNull) Kind() vtypes.Kind { return vtypes.KindBool }
func (i *IsNull) String() string {
	if i.Negate {
		return fmt.Sprintf("(%s is not null)", i.In)
	}
	return fmt.Sprintf("(%s is null)", i.In)
}

// Cast converts numeric storage classes.
type Cast struct {
	In Scalar
	To vtypes.Kind
}

// Kind implements Scalar.
func (c *Cast) Kind() vtypes.Kind { return c.To }
func (c *Cast) String() string    { return fmt.Sprintf("cast(%s as %s)", c.In, c.To) }
