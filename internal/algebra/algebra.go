// Package algebra defines the engine-neutral relational algebra that the
// optimizer produces and that each execution engine consumes:
//
//   - the X100 cross-compiler (internal/xcompile) translates it into
//     vectorized core operators — the paper's "cross compiler [7] that
//     translates optimized relational plans into algebraic X100 plans";
//   - the tuple-at-a-time baseline (internal/tupleengine) interprets it
//     row by row, Volcano style;
//   - the column-at-a-time baseline (internal/matengine) interprets it
//     with full materialization, MonetDB style.
//
// Having one plan language consumed by three engines is what makes the
// paper's comparisons (and our differential correctness tests) apples to
// apples: same plan, different execution discipline.
package algebra

import (
	"fmt"
	"strings"

	"vectorwise/internal/vtypes"
)

// Node is a relational operator in a plan tree.
type Node interface {
	// Schema is the node's output schema.
	Schema() *vtypes.Schema
	// Children returns input nodes (for rewriters and explainers).
	Children() []Node
}

// ScanNode reads a column projection of a base table.
type ScanNode struct {
	// Table is the catalog name.
	Table string
	// Cols are column indexes into the table's full schema.
	Cols []int
	// Out is the projected schema (filled by the planner).
	Out *vtypes.Schema
	// Partition restricts the scan to row groups [Lo, Hi); Hi == 0
	// means the whole table. Set by the parallel rewriter.
	PartLo, PartHi int
	// Filters are sargable conjuncts pushed into the scan by the
	// planner (see PushFiltersIntoScans): each is a comparison,
	// BETWEEN or IN over one output column of this scan against
	// literals or parameter slots. The execution engine both
	// evaluates them right after decompression (so downstream
	// operators see pre-filtered batches) and derives row-group
	// min/max pruning from them; serial engines evaluate them as an
	// ordinary selection. ColRef indexes are positions in Cols, i.e.
	// the scan's output schema.
	Filters []Scalar
}

// Schema implements Node.
func (s *ScanNode) Schema() *vtypes.Schema { return s.Out }

// Children implements Node.
func (s *ScanNode) Children() []Node { return nil }

// SelectNode filters rows by a boolean scalar expression.
type SelectNode struct {
	Input Node
	Pred  Scalar
}

// Schema implements Node.
func (s *SelectNode) Schema() *vtypes.Schema { return s.Input.Schema() }

// Children implements Node.
func (s *SelectNode) Children() []Node { return []Node{s.Input} }

// ProjectNode computes one scalar per output column.
type ProjectNode struct {
	Input Node
	Exprs []Scalar
	Names []string
}

// Schema implements Node.
func (p *ProjectNode) Schema() *vtypes.Schema {
	cols := make([]vtypes.Column, len(p.Exprs))
	for i, e := range p.Exprs {
		cols[i] = vtypes.Column{Name: p.Names[i], Kind: e.Kind()}
	}
	return &vtypes.Schema{Cols: cols}
}

// Children implements Node.
func (p *ProjectNode) Children() []Node { return []Node{p.Input} }

// AggFn names an aggregate function in the algebra.
type AggFn uint8

// Aggregate functions.
const (
	AggSum AggFn = iota
	AggCount
	AggCountStar
	AggMin
	AggMax
	AggAvg
)

func (f AggFn) String() string {
	return [...]string{"sum", "count", "count(*)", "min", "max", "avg"}[f]
}

// AggExpr is one aggregate column.
type AggExpr struct {
	Fn  AggFn
	Arg Scalar // nil for COUNT(*)
}

// Kind returns the aggregate's result kind.
func (a AggExpr) Kind() vtypes.Kind {
	switch a.Fn {
	case AggCount, AggCountStar:
		return vtypes.KindI64
	case AggAvg:
		return vtypes.KindF64
	default:
		return a.Arg.Kind()
	}
}

// AggNode groups and aggregates.
type AggNode struct {
	Input   Node
	GroupBy []Scalar
	Aggs    []AggExpr
	Names   []string // group names then agg names
	// Partial marks a per-partition aggregate under a parallel
	// recombination: with no GroupBy and zero input rows it emits
	// nothing, instead of the SQL-mandated global row (COUNT()=0,
	// MIN()=NULL, ...) — otherwise an empty partition would feed a
	// zero row into the final MIN/MAX. Set by the parallel rewriter.
	Partial bool
}

// Schema implements Node.
func (a *AggNode) Schema() *vtypes.Schema {
	cols := make([]vtypes.Column, 0, len(a.GroupBy)+len(a.Aggs))
	for i, g := range a.GroupBy {
		cols = append(cols, vtypes.Column{Name: a.Names[i], Kind: g.Kind()})
	}
	for i, ag := range a.Aggs {
		cols = append(cols, vtypes.Column{Name: a.Names[len(a.GroupBy)+i], Kind: ag.Kind()})
	}
	return &vtypes.Schema{Cols: cols}
}

// Children implements Node.
func (a *AggNode) Children() []Node { return []Node{a.Input} }

// JoinType mirrors the engine join types.
type JoinType uint8

// Join types.
const (
	JoinInner JoinType = iota
	JoinLeftSemi
	JoinLeftAnti
	JoinLeftOuter
)

func (t JoinType) String() string {
	return [...]string{"inner", "semi", "anti", "leftouter"}[t]
}

// JoinNode is an equi-join; key lists align pairwise.
type JoinNode struct {
	Left, Right         Node
	LeftKeys, RightKeys []Scalar
	Type                JoinType
}

// Schema implements Node.
func (j *JoinNode) Schema() *vtypes.Schema {
	var cols []vtypes.Column
	cols = append(cols, j.Left.Schema().Cols...)
	if j.Type == JoinInner || j.Type == JoinLeftOuter {
		for _, c := range j.Right.Schema().Cols {
			oc := c
			if j.Type == JoinLeftOuter {
				oc.Nullable = true
			}
			cols = append(cols, oc)
		}
	}
	return &vtypes.Schema{Cols: cols}
}

// Children implements Node.
func (j *JoinNode) Children() []Node { return []Node{j.Left, j.Right} }

// SortKey is one ORDER BY term.
type SortKey struct {
	Expr Scalar
	Desc bool
}

// SortNode orders its input.
type SortNode struct {
	Input Node
	Keys  []SortKey
}

// Schema implements Node.
func (s *SortNode) Schema() *vtypes.Schema { return s.Input.Schema() }

// Children implements Node.
func (s *SortNode) Children() []Node { return []Node{s.Input} }

// LimitNode passes at most N rows.
type LimitNode struct {
	Input Node
	N     int64
}

// Schema implements Node.
func (l *LimitNode) Schema() *vtypes.Schema { return l.Input.Schema() }

// Children implements Node.
func (l *LimitNode) Children() []Node { return []Node{l.Input} }

// UnionAllNode concatenates same-schema inputs. The parallel rewriter
// emits it as the algebraic form of the Xchange union; serial engines
// execute children in sequence.
type UnionAllNode struct {
	Inputs []Node
}

// Schema implements Node.
func (u *UnionAllNode) Schema() *vtypes.Schema { return u.Inputs[0].Schema() }

// Children implements Node.
func (u *UnionAllNode) Children() []Node { return u.Inputs }

// Explain renders a plan tree as an indented string.
func Explain(n Node) string {
	return explain(n, 0)
}

func explain(n Node, depth int) string {
	pad := ""
	for i := 0; i < depth; i++ {
		pad += "  "
	}
	var line string
	switch t := n.(type) {
	case *ScanNode:
		line = fmt.Sprintf("Scan %s cols=%v", t.Table, t.Cols)
		if t.PartHi > 0 {
			line += fmt.Sprintf(" part=[%d,%d)", t.PartLo, t.PartHi)
		}
		if len(t.Filters) > 0 {
			var parts []string
			for _, f := range t.Filters {
				parts = append(parts, f.String())
			}
			line += " filters=[" + strings.Join(parts, " and ") + "]"
		}
	case *SelectNode:
		line = fmt.Sprintf("Select %s", t.Pred)
	case *ProjectNode:
		line = fmt.Sprintf("Project %v", t.Names)
	case *AggNode:
		line = fmt.Sprintf("Aggregate groups=%d aggs=%d", len(t.GroupBy), len(t.Aggs))
	case *JoinNode:
		line = fmt.Sprintf("HashJoin %s", t.Type)
	case *SortNode:
		line = fmt.Sprintf("Sort keys=%d", len(t.Keys))
	case *LimitNode:
		line = fmt.Sprintf("Limit %d", t.N)
	case *UnionAllNode:
		line = fmt.Sprintf("XchgUnion width=%d", len(t.Inputs))
	default:
		line = fmt.Sprintf("%T", n)
	}
	out := pad + line + "\n"
	for _, c := range n.Children() {
		out += explain(c, depth+1)
	}
	return out
}
