package algebra

import (
	"fmt"

	"vectorwise/internal/vtypes"
)

// BindParams returns a copy of a plan template with every Param scalar
// replaced by a literal from args (args[0] binds $1). The input plan is
// never mutated, so a cached template can be bound by any number of
// concurrent executions. Values are coerced to the parameter's resolved
// kind with the same rules the planner applies to literals (ints widen
// to float, floats truncate to int, strings parse as dates).
func BindParams(n Node, args []vtypes.Value) (Node, error) {
	return bindNode(n, args)
}

func bindNode(n Node, args []vtypes.Value) (Node, error) {
	switch t := n.(type) {
	case *ScanNode:
		// A scan without filters carries no scalars; it is immutable
		// during execution and safe to share between the template and
		// its bindings. Pushed filters may hold Param slots, so a
		// filtered scan clone-binds like any predicate.
		if len(t.Filters) == 0 {
			return t, nil
		}
		filters, err := bindScalars(t.Filters, args)
		if err != nil {
			return nil, err
		}
		clone := *t
		clone.Filters = filters
		return &clone, nil
	case *SelectNode:
		in, err := bindNode(t.Input, args)
		if err != nil {
			return nil, err
		}
		pred, err := bindScalar(t.Pred, args)
		if err != nil {
			return nil, err
		}
		return &SelectNode{Input: in, Pred: pred}, nil
	case *ProjectNode:
		in, err := bindNode(t.Input, args)
		if err != nil {
			return nil, err
		}
		exprs, err := bindScalars(t.Exprs, args)
		if err != nil {
			return nil, err
		}
		return &ProjectNode{Input: in, Exprs: exprs, Names: t.Names}, nil
	case *AggNode:
		in, err := bindNode(t.Input, args)
		if err != nil {
			return nil, err
		}
		groups, err := bindScalars(t.GroupBy, args)
		if err != nil {
			return nil, err
		}
		aggs := make([]AggExpr, len(t.Aggs))
		for i, a := range t.Aggs {
			aggs[i] = a
			if a.Arg != nil {
				arg, err := bindScalar(a.Arg, args)
				if err != nil {
					return nil, err
				}
				aggs[i].Arg = arg
			}
		}
		return &AggNode{Input: in, GroupBy: groups, Aggs: aggs, Names: t.Names, Partial: t.Partial}, nil
	case *JoinNode:
		left, err := bindNode(t.Left, args)
		if err != nil {
			return nil, err
		}
		right, err := bindNode(t.Right, args)
		if err != nil {
			return nil, err
		}
		lk, err := bindScalars(t.LeftKeys, args)
		if err != nil {
			return nil, err
		}
		rk, err := bindScalars(t.RightKeys, args)
		if err != nil {
			return nil, err
		}
		return &JoinNode{Left: left, Right: right, LeftKeys: lk, RightKeys: rk, Type: t.Type}, nil
	case *SortNode:
		in, err := bindNode(t.Input, args)
		if err != nil {
			return nil, err
		}
		keys := make([]SortKey, len(t.Keys))
		for i, k := range t.Keys {
			e, err := bindScalar(k.Expr, args)
			if err != nil {
				return nil, err
			}
			keys[i] = SortKey{Expr: e, Desc: k.Desc}
		}
		return &SortNode{Input: in, Keys: keys}, nil
	case *LimitNode:
		in, err := bindNode(t.Input, args)
		if err != nil {
			return nil, err
		}
		return &LimitNode{Input: in, N: t.N}, nil
	case *UnionAllNode:
		inputs := make([]Node, len(t.Inputs))
		for i, c := range t.Inputs {
			in, err := bindNode(c, args)
			if err != nil {
				return nil, err
			}
			inputs[i] = in
		}
		return &UnionAllNode{Inputs: inputs}, nil
	default:
		return nil, fmt.Errorf("algebra: cannot bind parameters in %T", n)
	}
}

func bindScalars(ss []Scalar, args []vtypes.Value) ([]Scalar, error) {
	out := make([]Scalar, len(ss))
	for i, s := range ss {
		e, err := bindScalar(s, args)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}

func bindScalar(s Scalar, args []vtypes.Value) (Scalar, error) {
	switch t := s.(type) {
	case *Param:
		if t.Idx < 1 || t.Idx > len(args) {
			return nil, fmt.Errorf("algebra: parameter $%d not bound (%d args)", t.Idx, len(args))
		}
		v, err := CoerceValue(args[t.Idx-1], t.K)
		if err != nil {
			return nil, fmt.Errorf("algebra: parameter $%d: %w", t.Idx, err)
		}
		return &Lit{Val: v}, nil
	case *ColRef, *Lit:
		return s, nil
	case *Arith:
		l, err := bindScalar(t.L, args)
		if err != nil {
			return nil, err
		}
		r, err := bindScalar(t.R, args)
		if err != nil {
			return nil, err
		}
		return &Arith{Op: t.Op, L: l, R: r, K: t.K}, nil
	case *Cmp:
		l, err := bindScalar(t.L, args)
		if err != nil {
			return nil, err
		}
		r, err := bindScalar(t.R, args)
		if err != nil {
			return nil, err
		}
		return &Cmp{Op: t.Op, L: l, R: r}, nil
	case *Between:
		in, err := bindScalar(t.In, args)
		if err != nil {
			return nil, err
		}
		return &Between{In: in, Lo: t.Lo, Hi: t.Hi}, nil
	case *Like:
		in, err := bindScalar(t.In, args)
		if err != nil {
			return nil, err
		}
		return &Like{In: in, Pattern: t.Pattern, Negate: t.Negate}, nil
	case *In:
		in, err := bindScalar(t.In, args)
		if err != nil {
			return nil, err
		}
		return &In{In: in, List: t.List}, nil
	case *And:
		preds, err := bindScalars(t.Preds, args)
		if err != nil {
			return nil, err
		}
		return &And{Preds: preds}, nil
	case *Or:
		preds, err := bindScalars(t.Preds, args)
		if err != nil {
			return nil, err
		}
		return &Or{Preds: preds}, nil
	case *Not:
		in, err := bindScalar(t.In, args)
		if err != nil {
			return nil, err
		}
		return &Not{In: in}, nil
	case *Case:
		cond, err := bindScalar(t.Cond, args)
		if err != nil {
			return nil, err
		}
		then, err := bindScalar(t.Then, args)
		if err != nil {
			return nil, err
		}
		el, err := bindScalar(t.Else, args)
		if err != nil {
			return nil, err
		}
		return &Case{Cond: cond, Then: then, Else: el, K: t.K}, nil
	case *YearOf:
		in, err := bindScalar(t.In, args)
		if err != nil {
			return nil, err
		}
		return &YearOf{In: in}, nil
	case *IsNull:
		in, err := bindScalar(t.In, args)
		if err != nil {
			return nil, err
		}
		return &IsNull{In: in, Negate: t.Negate}, nil
	case *Cast:
		in, err := bindScalar(t.In, args)
		if err != nil {
			return nil, err
		}
		return &Cast{In: in, To: t.To}, nil
	default:
		return nil, fmt.Errorf("algebra: cannot bind parameters in scalar %T", s)
	}
}

// CoerceValue converts a bound argument to the kind a parameter slot
// resolved to: same storage class re-tags, ints widen to float, floats
// truncate to int, strings parse as dates. NULL adopts the slot kind.
func CoerceValue(v vtypes.Value, want vtypes.Kind) (vtypes.Value, error) {
	if want == vtypes.KindInvalid {
		return v, nil
	}
	if v.Null {
		return vtypes.NullValue(want), nil
	}
	if v.Kind.StorageClass() == want.StorageClass() {
		v.Kind = want
		return v, nil
	}
	switch {
	case want.StorageClass() == vtypes.ClassF64 && v.Kind.StorageClass() == vtypes.ClassI64:
		return vtypes.F64Value(float64(v.I64)), nil
	case want.StorageClass() == vtypes.ClassI64 && v.Kind.StorageClass() == vtypes.ClassF64:
		return vtypes.Value{Kind: want, I64: int64(v.F64)}, nil
	case want == vtypes.KindDate && v.Kind == vtypes.KindStr:
		d, err := vtypes.ParseDate(v.Str)
		if err != nil {
			return vtypes.Value{}, err
		}
		return vtypes.DateValue(d), nil
	default:
		return vtypes.Value{}, fmt.Errorf("value %v incompatible with %v", v, want)
	}
}
