package algebra

import (
	"strings"
	"testing"

	"vectorwise/internal/vtypes"
)

func c(i int, k vtypes.Kind) Scalar { return &ColRef{Idx: i, K: k} }

func TestArithKindInference(t *testing.T) {
	// int + int = int
	a, err := NewArith(OpAdd, c(0, vtypes.KindI64), c(1, vtypes.KindI64))
	if err != nil || a.Kind() != vtypes.KindI64 {
		t.Fatalf("int+int: %v %v", a, err)
	}
	// int * float widens
	a, err = NewArith(OpMul, c(0, vtypes.KindI64), c(1, vtypes.KindF64))
	if err != nil || a.Kind() != vtypes.KindF64 {
		t.Fatalf("int*float: %v %v", a, err)
	}
	// date - date = int (day difference)
	a, err = NewArith(OpSub, c(0, vtypes.KindDate), c(1, vtypes.KindDate))
	if err != nil || a.Kind() != vtypes.KindI64 {
		t.Fatalf("date-date: %v %v", a, err)
	}
	// date + int = date
	a, err = NewArith(OpAdd, c(0, vtypes.KindDate), c(1, vtypes.KindI64))
	if err != nil || a.Kind() != vtypes.KindDate {
		t.Fatalf("date+int: %v %v", a, err)
	}
	// string arithmetic is ill-typed
	if _, err := NewArith(OpAdd, c(0, vtypes.KindStr), c(1, vtypes.KindI64)); err == nil {
		t.Fatal("string arithmetic must fail")
	}
}

func TestCaseKindInference(t *testing.T) {
	cond := &Cmp{Op: CmpEq, L: c(0, vtypes.KindI64), R: &Lit{Val: vtypes.I64Value(1)}}
	cs, err := NewCase(cond, c(1, vtypes.KindI64), c(2, vtypes.KindF64))
	if err != nil || cs.Kind() != vtypes.KindF64 {
		t.Fatalf("mixed case: %v %v", cs, err)
	}
	if _, err := NewCase(c(0, vtypes.KindI64), c(1, vtypes.KindI64), c(2, vtypes.KindI64)); err == nil {
		t.Fatal("non-bool condition must fail")
	}
	if _, err := NewCase(cond, c(1, vtypes.KindStr), c(2, vtypes.KindI64)); err == nil {
		t.Fatal("incompatible arms must fail")
	}
}

func TestNodeSchemas(t *testing.T) {
	scan := &ScanNode{Table: "t", Cols: []int{0, 1},
		Out: vtypes.NewSchema(
			vtypes.Column{Name: "a", Kind: vtypes.KindI64},
			vtypes.Column{Name: "b", Kind: vtypes.KindStr})}
	sel := &SelectNode{Input: scan, Pred: &Cmp{Op: CmpEq, L: c(0, vtypes.KindI64), R: &Lit{Val: vtypes.I64Value(1)}}}
	if sel.Schema().Len() != 2 {
		t.Fatal("select schema passes through")
	}
	proj := &ProjectNode{Input: sel, Exprs: []Scalar{c(1, vtypes.KindStr)}, Names: []string{"x"}}
	if proj.Schema().Col(0).Name != "x" || proj.Schema().Col(0).Kind != vtypes.KindStr {
		t.Fatal("project schema wrong")
	}
	agg := &AggNode{Input: scan, GroupBy: []Scalar{c(1, vtypes.KindStr)},
		Aggs:  []AggExpr{{Fn: AggSum, Arg: c(0, vtypes.KindI64)}, {Fn: AggAvg, Arg: c(0, vtypes.KindI64)}, {Fn: AggCountStar}},
		Names: []string{"g", "s", "a", "n"}}
	sch := agg.Schema()
	if sch.Col(1).Kind != vtypes.KindI64 || sch.Col(2).Kind != vtypes.KindF64 || sch.Col(3).Kind != vtypes.KindI64 {
		t.Fatalf("agg schema kinds: %v", sch)
	}
	join := &JoinNode{Left: scan, Right: scan,
		LeftKeys: []Scalar{c(0, vtypes.KindI64)}, RightKeys: []Scalar{c(0, vtypes.KindI64)},
		Type: JoinLeftOuter}
	js := join.Schema()
	if js.Len() != 4 || !js.Col(2).Nullable {
		t.Fatalf("outer join schema: %v", js)
	}
	semi := &JoinNode{Left: scan, Right: scan,
		LeftKeys: []Scalar{c(0, vtypes.KindI64)}, RightKeys: []Scalar{c(0, vtypes.KindI64)},
		Type: JoinLeftSemi}
	if semi.Schema().Len() != 2 {
		t.Fatal("semi join must project probe side only")
	}
}

func TestExplainRendersTree(t *testing.T) {
	scan := &ScanNode{Table: "t", Cols: []int{0},
		Out: vtypes.NewSchema(vtypes.Column{Name: "a", Kind: vtypes.KindI64})}
	scan2 := &ScanNode{Table: "t", Cols: []int{0}, PartLo: 1, PartHi: 3,
		Out: scan.Out}
	plan := &LimitNode{N: 5, Input: &SortNode{
		Keys:  []SortKey{{Expr: c(0, vtypes.KindI64)}},
		Input: &UnionAllNode{Inputs: []Node{scan, scan2}},
	}}
	out := Explain(plan)
	for _, want := range []string{"Limit 5", "Sort keys=1", "XchgUnion width=2", "Scan t", "part=[1,3)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain missing %q:\n%s", want, out)
		}
	}
	// Scalars render readably.
	s := (&And{Preds: []Scalar{
		&Cmp{Op: CmpLe, L: c(0, vtypes.KindI64), R: &Lit{Val: vtypes.I64Value(9)}},
		&Like{In: c(1, vtypes.KindStr), Pattern: "a%"},
		&Between{In: c(0, vtypes.KindI64), Lo: vtypes.I64Value(1), Hi: vtypes.I64Value(2)},
		&In{In: c(0, vtypes.KindI64), List: []vtypes.Value{vtypes.I64Value(3)}},
		&Not{In: &IsNull{In: c(0, vtypes.KindI64)}},
	}}).String()
	for _, want := range []string{"#0 <= 9", "like", "between", "in [3]", "is null"} {
		if !strings.Contains(s, want) {
			t.Fatalf("scalar render missing %q: %s", want, s)
		}
	}
}
