package xcompile

import (
	"vectorwise/internal/algebra"
	"vectorwise/internal/storage"
	"vectorwise/internal/vtypes"
)

// Row-group prune synthesis: a ScanNode's pushed filters are turned
// into a storage.PruneFn that tests each group's chunk min/max before
// anything is decompressed — the paper's "small materialized
// aggregates" put to work by the planner instead of the caller. The
// synthesis runs at compile time, which on the plan-cache path is
// after BindParams has substituted the execution's argument values, so
// a cached parametrized plan prunes with its own bound bounds.
//
// Every conjunct is a sufficient condition: if any one proves the
// group empty, the group skips. Conjunct shapes the statistics cannot
// refute (and NULL-comparison conjuncts, which are never true) are
// handled conservatively; rows inside surviving groups are still
// filtered by the compiled predicate, so pruning is purely an
// I/O/decompression saving, never a semantic change.

// groupCheck reports whether a row group provably has no matching rows.
type groupCheck func(grp *storage.GroupMeta) bool

// synthesizePrune derives a PruneFn from a scan's filters, or nil when
// no conjunct is refutable by statistics. cols maps filter column
// references (scan-output positions) to table column indexes.
func synthesizePrune(cols []int, filters []algebra.Scalar) storage.PruneFn {
	var checks []groupCheck
	for _, f := range filters {
		if c := synthesizeCheck(cols, f); c != nil {
			checks = append(checks, c)
		}
	}
	if len(checks) == 0 {
		return nil
	}
	return func(_ int, grp *storage.GroupMeta) bool {
		for _, c := range checks {
			if c(grp) {
				return true
			}
		}
		return false
	}
}

// litBounds compares a literal against the min/max statistics of table
// column tc: it returns sign(lit-min), sign(lit-max) and whether the
// comparison is usable (stats present, storage classes agree).
func litBounds(k vtypes.Kind, tc int, lit vtypes.Value) func(grp *storage.GroupMeta) (vsMin, vsMax int, ok bool) {
	class := k.StorageClass()
	if lit.Kind.StorageClass() != class {
		return nil
	}
	switch class {
	case vtypes.ClassI64:
		v := lit.I64
		return func(grp *storage.GroupMeta) (int, int, bool) {
			cm := &grp.Cols[tc]
			if !cm.HasStats {
				return 0, 0, false
			}
			return cmpI64(v, cm.MinI64), cmpI64(v, cm.MaxI64), true
		}
	case vtypes.ClassF64:
		v := lit.F64
		return func(grp *storage.GroupMeta) (int, int, bool) {
			cm := &grp.Cols[tc]
			if !cm.HasStats {
				return 0, 0, false
			}
			return cmpF64(v, cm.MinF64), cmpF64(v, cm.MaxF64), true
		}
	case vtypes.ClassStr:
		v := lit.Str
		return func(grp *storage.GroupMeta) (int, int, bool) {
			cm := &grp.Cols[tc]
			if !cm.HasStats {
				return 0, 0, false
			}
			return cmpStr(v, cm.MinStr), cmpStr(v, cm.MaxStr), true
		}
	default:
		return nil
	}
}

func cmpI64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpF64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpStr(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// pruneAlways marks conjuncts that no row can satisfy (comparisons
// against NULL): every group prunes.
func pruneAlways(*storage.GroupMeta) bool { return true }

// synthesizeCheck builds the group-emptiness test of one conjunct, or
// nil when the conjunct is not refutable by min/max statistics.
func synthesizeCheck(cols []int, f algebra.Scalar) groupCheck {
	colAt := func(s algebra.Scalar) (int, vtypes.Kind, bool) {
		col, ok := s.(*algebra.ColRef)
		if !ok || col.Idx < 0 || col.Idx >= len(cols) {
			return 0, 0, false
		}
		return cols[col.Idx], col.K, true
	}
	litOf := func(s algebra.Scalar) (vtypes.Value, bool) {
		l, ok := s.(*algebra.Lit)
		if !ok {
			return vtypes.Value{}, false
		}
		return l.Val, true
	}
	switch t := f.(type) {
	case *algebra.Cmp:
		op := t.Op
		colSide, litSide := t.L, t.R
		if _, ok := litSide.(*algebra.Lit); !ok {
			colSide, litSide = t.R, t.L
			op = flipCmp(op)
		}
		tc, k, ok := colAt(colSide)
		if !ok {
			return nil
		}
		lit, ok := litOf(litSide)
		if !ok {
			return nil
		}
		if lit.Null {
			return pruneAlways
		}
		b := litBounds(k, tc, lit)
		if b == nil {
			return nil
		}
		return func(grp *storage.GroupMeta) bool {
			vsMin, vsMax, ok := b(grp)
			if !ok {
				return false
			}
			switch op {
			case algebra.CmpEq:
				return vsMin < 0 || vsMax > 0
			case algebra.CmpNe:
				return vsMin == 0 && vsMax == 0 // min == lit == max
			case algebra.CmpLt:
				return vsMin <= 0 // min >= lit
			case algebra.CmpLe:
				return vsMin < 0 // min > lit
			case algebra.CmpGt:
				return vsMax >= 0 // max <= lit
			default: // CmpGe
				return vsMax > 0 // max < lit
			}
		}
	case *algebra.Between:
		tc, k, ok := colAt(t.In)
		if !ok {
			return nil
		}
		if t.Lo.Null || t.Hi.Null {
			return pruneAlways
		}
		loB, hiB := litBounds(k, tc, t.Lo), litBounds(k, tc, t.Hi)
		if loB == nil || hiB == nil {
			return nil
		}
		return func(grp *storage.GroupMeta) bool {
			_, loVsMax, ok := loB(grp)
			if !ok {
				return false
			}
			hiVsMin, _, _ := hiB(grp)
			return loVsMax > 0 || hiVsMin < 0 // lo > max or hi < min
		}
	case *algebra.In:
		tc, k, ok := colAt(t.In)
		if !ok {
			return nil
		}
		bs := make([]func(grp *storage.GroupMeta) (int, int, bool), 0, len(t.List))
		for _, v := range t.List {
			if v.Null {
				continue // NULL member matches nothing
			}
			b := litBounds(k, tc, v)
			if b == nil {
				return nil
			}
			bs = append(bs, b)
		}
		if len(bs) == 0 {
			return pruneAlways
		}
		return func(grp *storage.GroupMeta) bool {
			for _, b := range bs {
				vsMin, vsMax, ok := b(grp)
				if !ok {
					return false
				}
				if vsMin >= 0 && vsMax <= 0 { // member inside [min,max]
					return false
				}
			}
			return true
		}
	default:
		return nil
	}
}

// flipCmp mirrors an operator across swapped operands (lit OP col →
// col flip(OP) lit).
func flipCmp(op algebra.CmpOp) algebra.CmpOp {
	switch op {
	case algebra.CmpLt:
		return algebra.CmpGt
	case algebra.CmpLe:
		return algebra.CmpGe
	case algebra.CmpGt:
		return algebra.CmpLt
	case algebra.CmpGe:
		return algebra.CmpLe
	default:
		return op
	}
}
