package xcompile

import (
	"vectorwise/internal/primitives"
	"vectorwise/internal/vector"
)

// neverPred matches no rows: the compiled form of a comparison against
// a NULL literal (never true in SQL), so the evaluated predicate and
// the prune function synthesized from the same conjunct agree.
type neverPred struct{}

// Filter implements expr.Pred.
func (neverPred) Filter(b *vector.Batch) error {
	b.SetSel(b.MutableSel(b.Capacity()), 0)
	return nil
}

// nullPred selects rows by a column's NULL indicator — the compiled form
// of IS [NOT] NULL after the storage layer's two-column decomposition.
type nullPred struct {
	idx    int
	negate bool // true = IS NOT NULL
}

// Filter implements expr.Pred.
func (p *nullPred) Filter(b *vector.Batch) error {
	v := b.Vecs[p.idx]
	res := b.MutableSel(b.Capacity())
	var k int
	if v.Nulls == nil {
		// Column has no indicator: nothing is NULL.
		if p.negate {
			if b.Sel == nil {
				for i := 0; i < b.N; i++ {
					res[i] = int32(i)
				}
				k = b.N
			} else {
				copy(res, b.Sel[:b.N])
				k = b.N
			}
		} else {
			k = 0
		}
	} else if p.negate {
		k = primitives.SelIsNotNull(res, v.Nulls, b.Sel, b.N)
	} else {
		k = primitives.SelIsNull(res, v.Nulls, b.Sel, b.N)
	}
	b.SetSel(res, k)
	return nil
}
