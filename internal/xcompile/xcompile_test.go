package xcompile

import (
	"testing"

	"vectorwise/internal/algebra"
	"vectorwise/internal/catalog"
	"vectorwise/internal/core"
	"vectorwise/internal/storage"
	"vectorwise/internal/vtypes"
)

func buildCat(t *testing.T) *catalog.Catalog {
	t.Helper()
	schema := vtypes.NewSchema(
		vtypes.Column{Name: "k", Kind: vtypes.KindI64},
		vtypes.Column{Name: "n", Kind: vtypes.KindI64, Nullable: true},
	)
	b := storage.NewBuilder("t", schema, 64)
	for i := 0; i < 100; i++ {
		v := vtypes.I64Value(int64(i))
		if i%5 == 0 {
			v = vtypes.NullValue(vtypes.KindI64)
		}
		if err := b.AppendRow(vtypes.Row{vtypes.I64Value(int64(i)), v}); err != nil {
			t.Fatal(err)
		}
	}
	tbl, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	cat.Put(tbl)
	return cat
}

func scanT() *algebra.ScanNode {
	return &algebra.ScanNode{Table: "t", Cols: []int{0, 1},
		Out: vtypes.NewSchema(
			vtypes.Column{Name: "k", Kind: vtypes.KindI64},
			vtypes.Column{Name: "n", Kind: vtypes.KindI64, Nullable: true})}
}

func TestCompileIsNullPredicate(t *testing.T) {
	cat := buildCat(t)
	plan := &algebra.SelectNode{
		Input: scanT(),
		Pred:  &algebra.IsNull{In: &algebra.ColRef{Idx: 1, K: vtypes.KindI64}},
	}
	op, err := Compile(plan, cat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := core.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("IS NULL matched %d rows, want 20", len(rows))
	}
	// Negated form selects the complement.
	plan.Pred = &algebra.IsNull{In: &algebra.ColRef{Idx: 1, K: vtypes.KindI64}, Negate: true}
	op, err = Compile(plan, cat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows, err = core.Collect(op)
	if err != nil || len(rows) != 80 {
		t.Fatalf("IS NOT NULL matched %d rows, want 80 (%v)", len(rows), err)
	}
}

func TestNullPredOnColumnWithoutIndicator(t *testing.T) {
	cat := buildCat(t)
	// Column 0 has no NULLs (no indicator chunk).
	plan := &algebra.SelectNode{
		Input: scanT(),
		Pred:  &algebra.IsNull{In: &algebra.ColRef{Idx: 0, K: vtypes.KindI64}},
	}
	op, err := Compile(plan, cat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := core.Collect(op)
	if err != nil || len(rows) != 0 {
		t.Fatalf("IS NULL on non-nullable col: %d rows", len(rows))
	}
	plan.Pred = &algebra.IsNull{In: &algebra.ColRef{Idx: 0, K: vtypes.KindI64}, Negate: true}
	op, _ = Compile(plan, cat, Options{})
	rows, err = core.Collect(op)
	if err != nil || len(rows) != 100 {
		t.Fatalf("IS NOT NULL on non-nullable col: %d rows", len(rows))
	}
}

func TestCompileErrors(t *testing.T) {
	cat := buildCat(t)
	// Unknown table.
	if _, err := Compile(&algebra.ScanNode{Table: "nope", Cols: []int{0}}, cat, Options{}); err == nil {
		t.Fatal("unknown table must error")
	}
	// IS NULL on a non-column expression is unsupported.
	arith, _ := algebra.NewArith(algebra.OpAdd,
		&algebra.ColRef{Idx: 0, K: vtypes.KindI64}, &algebra.Lit{Val: vtypes.I64Value(1)})
	bad := &algebra.SelectNode{Input: scanT(), Pred: &algebra.IsNull{In: arith}}
	if _, err := Compile(bad, cat, Options{}); err == nil {
		t.Fatal("IS NULL on expression must error")
	}
	// Join with mismatched key counts.
	if _, err := Compile(&algebra.JoinNode{
		Left: scanT(), Right: scanT(),
		LeftKeys: []algebra.Scalar{&algebra.ColRef{Idx: 0, K: vtypes.KindI64}},
	}, cat, Options{}); err == nil {
		t.Fatal("key mismatch must error")
	}
}

func TestCompilePruneHook(t *testing.T) {
	cat := buildCat(t)
	scan := scanT()
	pruned := 0
	opts := Options{Prune: map[*algebra.ScanNode]storage.PruneFn{
		scan: func(g *storage.GroupMeta) bool {
			pruned++
			return g.Cols[0].MaxI64 < 64 // skip the first row group
		},
	}}
	op, err := Compile(scan, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := core.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if pruned == 0 || len(rows) != 36 {
		t.Fatalf("prune hook: pruned=%d rows=%d", pruned, len(rows))
	}
}
