package xcompile

import (
	"testing"

	"vectorwise/internal/algebra"
	"vectorwise/internal/catalog"
	"vectorwise/internal/core"
	"vectorwise/internal/storage"
	"vectorwise/internal/vtypes"
)

func buildCat(t *testing.T) *catalog.Catalog {
	t.Helper()
	schema := vtypes.NewSchema(
		vtypes.Column{Name: "k", Kind: vtypes.KindI64},
		vtypes.Column{Name: "n", Kind: vtypes.KindI64, Nullable: true},
	)
	b := storage.NewBuilder("t", schema, 64)
	for i := 0; i < 100; i++ {
		v := vtypes.I64Value(int64(i))
		if i%5 == 0 {
			v = vtypes.NullValue(vtypes.KindI64)
		}
		if err := b.AppendRow(vtypes.Row{vtypes.I64Value(int64(i)), v}); err != nil {
			t.Fatal(err)
		}
	}
	tbl, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	cat.Put(tbl)
	return cat
}

func scanT() *algebra.ScanNode {
	return &algebra.ScanNode{Table: "t", Cols: []int{0, 1},
		Out: vtypes.NewSchema(
			vtypes.Column{Name: "k", Kind: vtypes.KindI64},
			vtypes.Column{Name: "n", Kind: vtypes.KindI64, Nullable: true})}
}

func TestCompileIsNullPredicate(t *testing.T) {
	cat := buildCat(t)
	plan := &algebra.SelectNode{
		Input: scanT(),
		Pred:  &algebra.IsNull{In: &algebra.ColRef{Idx: 1, K: vtypes.KindI64}},
	}
	op, err := Compile(plan, cat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := core.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("IS NULL matched %d rows, want 20", len(rows))
	}
	// Negated form selects the complement.
	plan.Pred = &algebra.IsNull{In: &algebra.ColRef{Idx: 1, K: vtypes.KindI64}, Negate: true}
	op, err = Compile(plan, cat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows, err = core.Collect(op)
	if err != nil || len(rows) != 80 {
		t.Fatalf("IS NOT NULL matched %d rows, want 80 (%v)", len(rows), err)
	}
}

func TestNullPredOnColumnWithoutIndicator(t *testing.T) {
	cat := buildCat(t)
	// Column 0 has no NULLs (no indicator chunk).
	plan := &algebra.SelectNode{
		Input: scanT(),
		Pred:  &algebra.IsNull{In: &algebra.ColRef{Idx: 0, K: vtypes.KindI64}},
	}
	op, err := Compile(plan, cat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := core.Collect(op)
	if err != nil || len(rows) != 0 {
		t.Fatalf("IS NULL on non-nullable col: %d rows", len(rows))
	}
	plan.Pred = &algebra.IsNull{In: &algebra.ColRef{Idx: 0, K: vtypes.KindI64}, Negate: true}
	op, _ = Compile(plan, cat, Options{})
	rows, err = core.Collect(op)
	if err != nil || len(rows) != 100 {
		t.Fatalf("IS NOT NULL on non-nullable col: %d rows", len(rows))
	}
}

func TestCompileErrors(t *testing.T) {
	cat := buildCat(t)
	// Unknown table.
	if _, err := Compile(&algebra.ScanNode{Table: "nope", Cols: []int{0}}, cat, Options{}); err == nil {
		t.Fatal("unknown table must error")
	}
	// IS NULL on a non-column expression is unsupported.
	arith, _ := algebra.NewArith(algebra.OpAdd,
		&algebra.ColRef{Idx: 0, K: vtypes.KindI64}, &algebra.Lit{Val: vtypes.I64Value(1)})
	bad := &algebra.SelectNode{Input: scanT(), Pred: &algebra.IsNull{In: arith}}
	if _, err := Compile(bad, cat, Options{}); err == nil {
		t.Fatal("IS NULL on expression must error")
	}
	// Join with mismatched key counts.
	if _, err := Compile(&algebra.JoinNode{
		Left: scanT(), Right: scanT(),
		LeftKeys: []algebra.Scalar{&algebra.ColRef{Idx: 0, K: vtypes.KindI64}},
	}, cat, Options{}); err == nil {
		t.Fatal("key mismatch must error")
	}
}

func TestCompileAutoPrune(t *testing.T) {
	cat := buildCat(t)
	// A filtered scan prunes row groups from its own filters: k >= 64
	// refutes group 0 (k in [0,64)) by min/max and pre-filters the
	// surviving group, no caller-supplied hook involved.
	scan := scanT()
	scan.Filters = []algebra.Scalar{&algebra.Cmp{
		Op: algebra.CmpGe,
		L:  &algebra.ColRef{Idx: 0, K: vtypes.KindI64},
		R:  &algebra.Lit{Val: vtypes.I64Value(64)},
	}}
	stats := &storage.ScanStats{}
	op, err := Compile(scan, cat, Options{ScanStats: stats})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := core.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	snap := stats.Snapshot()
	if len(rows) != 36 || snap.GroupsPruned != 1 || snap.GroupsScanned != 1 {
		t.Fatalf("auto prune: rows=%d stats=%+v", len(rows), snap)
	}
	// NoPrune keeps the filter but scans every group.
	stats = &storage.ScanStats{}
	op, err = Compile(scanTFiltered(64), cat, Options{ScanStats: stats, NoPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	rows, err = core.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	snap = stats.Snapshot()
	if len(rows) != 36 || snap.GroupsPruned != 0 || snap.GroupsScanned != 2 {
		t.Fatalf("noprune: rows=%d stats=%+v", len(rows), snap)
	}
}

func scanTFiltered(ge int64) *algebra.ScanNode {
	s := scanT()
	s.Filters = []algebra.Scalar{&algebra.Cmp{
		Op: algebra.CmpGe,
		L:  &algebra.ColRef{Idx: 0, K: vtypes.KindI64},
		R:  &algebra.Lit{Val: vtypes.I64Value(ge)},
	}}
	return s
}
