// Package xcompile is the cross-compiler of the paper (§I-B, ref [7]):
// it translates optimized relational algebra plans into executable X100
// operator trees, compiling scalar expressions down to vectorized
// primitive kernels. It is the only bridge between the planning stack
// and the vectorized engine.
package xcompile

import (
	"context"
	"fmt"

	"vectorwise/internal/algebra"
	"vectorwise/internal/catalog"
	"vectorwise/internal/core"
	"vectorwise/internal/expr"
	"vectorwise/internal/pdt"
	"vectorwise/internal/storage"
	"vectorwise/internal/vtypes"
)

// Options configure compilation.
type Options struct {
	// VecSize overrides the engine vector size (0 = default).
	VecSize int
	// Fetch interposes a buffer manager on scans.
	Fetch storage.ChunkFetcher
	// ScanStats, when non-nil, receives scanned/pruned row-group
	// counts from every scan the compiled plan runs (partition scans
	// share it; the fields are atomic).
	ScanStats *storage.ScanStats
	// HashStats, when non-nil, receives hash-table shape and probe
	// stats from every HashAggregate and HashJoin in the compiled plan
	// (recorded at operator close; the sink is internally locked).
	HashStats *core.HashStatsSink
	// NoPrune disables min/max row-group pruning (filters still
	// evaluate inside the scan) — the differential-testing and
	// benchmarking switch for isolating data skipping.
	NoPrune bool
	// Ctx is the statement's cancellation context. It is installed on
	// every operator the compiler builds, so once the context is done,
	// Next returns the context error at the next vector boundary —
	// scans, joins, aggregates and exchange workers all stop mid-
	// statement instead of running to completion. Nil disables the
	// checks (hand-built experiment plans pay nothing).
	Ctx context.Context
	// Resolver, when non-nil, supplies each scan's stable image and PDT
	// layer stack instead of the live catalog. Epoch-snapshot cursors
	// pass their pinned snapshot here, so a compiled statement reads
	// exactly the commit point it pinned no matter what commits, folds
	// or stable-image swaps happen while it streams.
	Resolver Resolver
}

// Resolver resolves a table name to the stable image and PDT layer
// stack (bottom first) its scans should merge. *catalog.Catalog
// implements it with the live committed state.
type Resolver interface {
	Resolve(name string) (*storage.Table, []*pdt.PDT, error)
}

// Compile translates a plan into a vectorized operator tree.
func Compile(n algebra.Node, cat *catalog.Catalog, opts Options) (core.Operator, error) {
	c := &compiler{cat: cat, opts: opts}
	return c.node(n)
}

type compiler struct {
	cat  *catalog.Catalog
	opts Options
}

// node compiles one plan node and installs the statement context on the
// resulting operator (children were installed on their own recursive
// calls, so the whole tree ends up cancellation-aware).
func (c *compiler) node(n algebra.Node) (core.Operator, error) {
	op, err := c.nodeInner(n)
	if err != nil {
		return nil, err
	}
	if c.opts.Ctx != nil {
		core.SetTreeContext(op, c.opts.Ctx)
	}
	return op, nil
}

func (c *compiler) nodeInner(n algebra.Node) (core.Operator, error) {
	switch t := n.(type) {
	case *algebra.ScanNode:
		var res Resolver = c.cat
		if c.opts.Resolver != nil {
			res = c.opts.Resolver
		}
		tbl, layers, err := res.Resolve(t.Table)
		if err != nil {
			return nil, err
		}
		so := core.ScanOpts{
			VecSize: c.opts.VecSize,
			Fetch:   c.opts.Fetch,
			Stats:   c.opts.ScanStats,
			Layers:  layers,
			GroupLo: t.PartLo,
			GroupHi: t.PartHi,
		}
		if len(t.Filters) > 0 {
			// Pushed filters compile to an ordinary predicate the scan
			// evaluates right after decompression, and — unless
			// disabled — to a min/max prune function over the same
			// (bound) bounds, so groups the predicate cannot match are
			// never decompressed at all.
			p, err := c.pred(algebra.FiltersPred(t.Filters), t.Schema())
			if err != nil {
				return nil, err
			}
			so.Filter = p
			if !c.opts.NoPrune {
				so.Prune = synthesizePrune(t.Cols, t.Filters)
			}
		}
		return core.NewScan(tbl, t.Cols, so), nil

	case *algebra.SelectNode:
		child, err := c.node(t.Input)
		if err != nil {
			return nil, err
		}
		pred, err := c.pred(t.Pred, t.Input.Schema())
		if err != nil {
			return nil, err
		}
		return core.NewSelect(child, pred), nil

	case *algebra.ProjectNode:
		child, err := c.node(t.Input)
		if err != nil {
			return nil, err
		}
		exprs := make([]core.Expr, len(t.Exprs))
		for i, s := range t.Exprs {
			e, err := c.scalar(s, t.Input.Schema())
			if err != nil {
				return nil, err
			}
			exprs[i] = e
		}
		return core.NewProject(child, exprs, t.Names), nil

	case *algebra.AggNode:
		child, err := c.node(t.Input)
		if err != nil {
			return nil, err
		}
		groups := make([]core.Expr, len(t.GroupBy))
		for i, g := range t.GroupBy {
			e, err := c.scalar(g, t.Input.Schema())
			if err != nil {
				return nil, err
			}
			groups[i] = e
		}
		aggs := make([]core.AggSpec, len(t.Aggs))
		for i, a := range t.Aggs {
			spec := core.AggSpec{Fn: aggFn(a.Fn)}
			if a.Arg != nil {
				e, err := c.scalar(a.Arg, t.Input.Schema())
				if err != nil {
					return nil, err
				}
				spec.Arg = e
			}
			aggs[i] = spec
		}
		agg := core.NewHashAggregate(child, groups, aggs, t.Names)
		agg.SetPartial(t.Partial)
		agg.SetStatsSink(c.opts.HashStats)
		return agg, nil

	case *algebra.JoinNode:
		left, err := c.node(t.Left)
		if err != nil {
			return nil, err
		}
		right, err := c.node(t.Right)
		if err != nil {
			return nil, err
		}
		if len(t.LeftKeys) != len(t.RightKeys) {
			return nil, fmt.Errorf("xcompile: join key lists differ (%d vs %d)", len(t.LeftKeys), len(t.RightKeys))
		}
		lk := make([]core.Expr, len(t.LeftKeys))
		rk := make([]core.Expr, len(t.RightKeys))
		for i := range t.LeftKeys {
			if lk[i], err = c.scalar(t.LeftKeys[i], t.Left.Schema()); err != nil {
				return nil, err
			}
			if rk[i], err = c.scalar(t.RightKeys[i], t.Right.Schema()); err != nil {
				return nil, err
			}
		}
		hj, err := core.NewHashJoin(left, right, lk, rk, core.JoinType(t.Type))
		if err != nil {
			return nil, err
		}
		hj.SetStatsSink(c.opts.HashStats)
		return hj, nil

	case *algebra.SortNode:
		child, err := c.node(t.Input)
		if err != nil {
			return nil, err
		}
		keys := make([]core.SortKey, len(t.Keys))
		for i, k := range t.Keys {
			e, err := c.scalar(k.Expr, t.Input.Schema())
			if err != nil {
				return nil, err
			}
			keys[i] = core.SortKey{Expr: e, Desc: k.Desc}
		}
		return core.NewSort(child, keys), nil

	case *algebra.LimitNode:
		child, err := c.node(t.Input)
		if err != nil {
			return nil, err
		}
		return core.NewLimit(child, t.N), nil

	case *algebra.UnionAllNode:
		children := make([]core.Operator, len(t.Inputs))
		for i, in := range t.Inputs {
			op, err := c.node(in)
			if err != nil {
				return nil, err
			}
			children[i] = op
		}
		return core.NewXchgUnion(children)

	default:
		return nil, fmt.Errorf("xcompile: unsupported node %T", n)
	}
}

func aggFn(f algebra.AggFn) core.AggFn {
	switch f {
	case algebra.AggSum:
		return core.AggSum
	case algebra.AggCount:
		return core.AggCount
	case algebra.AggCountStar:
		return core.AggCountStar
	case algebra.AggMin:
		return core.AggMin
	case algebra.AggMax:
		return core.AggMax
	default:
		return core.AggAvg
	}
}

// scalar compiles a value-producing expression.
func (c *compiler) scalar(s algebra.Scalar, in *vtypes.Schema) (expr.Expr, error) {
	switch t := s.(type) {
	case *algebra.ColRef:
		return expr.NewCol(t.Idx, t.K), nil
	case *algebra.Lit:
		return expr.NewConst(t.Val), nil
	case *algebra.Param:
		// Plans holding Params are templates; algebra.BindParams must
		// substitute literals before the plan is executable.
		return nil, fmt.Errorf("xcompile: unbound parameter $%d (bind before execution)", t.Idx)
	case *algebra.Arith:
		l, err := c.scalar(t.L, in)
		if err != nil {
			return nil, err
		}
		r, err := c.scalar(t.R, in)
		if err != nil {
			return nil, err
		}
		return expr.NewArith(expr.ArithOp(t.Op), l, r)
	case *algebra.Cast:
		e, err := c.scalar(t.In, in)
		if err != nil {
			return nil, err
		}
		return expr.NewCast(e, t.To), nil
	case *algebra.YearOf:
		e, err := c.scalar(t.In, in)
		if err != nil {
			return nil, err
		}
		return expr.NewYearOf(e), nil
	case *algebra.Case:
		cond, err := c.scalar(t.Cond, in)
		if err != nil {
			return nil, err
		}
		then, err := c.scalar(t.Then, in)
		if err != nil {
			return nil, err
		}
		el, err := c.scalar(t.Else, in)
		if err != nil {
			return nil, err
		}
		return expr.NewCase(cond, then, el)
	case *algebra.Cmp:
		l, err := c.scalar(t.L, in)
		if err != nil {
			return nil, err
		}
		r, err := c.scalar(t.R, in)
		if err != nil {
			return nil, err
		}
		return expr.NewCmpMap(l, expr.CmpOp(t.Op), r)
	case *algebra.Like:
		e, err := c.scalar(t.In, in)
		if err != nil {
			return nil, err
		}
		m, err := expr.NewLikeMap(e, t.Pattern)
		if err != nil {
			return nil, err
		}
		if t.Negate {
			return expr.NewNotMap(m)
		}
		return m, nil
	case *algebra.And:
		subs, err := c.scalars(t.Preds, in)
		if err != nil {
			return nil, err
		}
		return expr.NewAndMap(subs...)
	case *algebra.Or:
		subs, err := c.scalars(t.Preds, in)
		if err != nil {
			return nil, err
		}
		return expr.NewOrMap(subs...)
	case *algebra.Not:
		e, err := c.scalar(t.In, in)
		if err != nil {
			return nil, err
		}
		return expr.NewNotMap(e)
	case *algebra.In:
		e, err := c.scalar(t.In, in)
		if err != nil {
			return nil, err
		}
		return expr.NewInMap(e, t.List)
	case *algebra.Between:
		e, err := c.scalar(t.In, in)
		if err != nil {
			return nil, err
		}
		return expr.NewBetweenMap(e, t.Lo, t.Hi)
	default:
		return nil, fmt.Errorf("xcompile: unsupported scalar %T as value", s)
	}
}

// scalars compiles a list of scalar expressions.
func (c *compiler) scalars(ss []algebra.Scalar, in *vtypes.Schema) ([]expr.Expr, error) {
	out := make([]expr.Expr, len(ss))
	for i, s := range ss {
		e, err := c.scalar(s, in)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}

// pred compiles a boolean scalar into a selection-vector predicate,
// picking fused Sel* kernels for the common shapes.
func (c *compiler) pred(s algebra.Scalar, in *vtypes.Schema) (expr.Pred, error) {
	switch t := s.(type) {
	case *algebra.And:
		ps := make([]expr.Pred, len(t.Preds))
		for i, sub := range t.Preds {
			p, err := c.pred(sub, in)
			if err != nil {
				return nil, err
			}
			ps[i] = p
		}
		return expr.NewAnd(ps...), nil
	case *algebra.Or:
		ps := make([]expr.Pred, len(t.Preds))
		for i, sub := range t.Preds {
			p, err := c.pred(sub, in)
			if err != nil {
				return nil, err
			}
			ps[i] = p
		}
		return expr.NewOr(ps...), nil
	case *algebra.Not:
		p, err := c.pred(t.In, in)
		if err != nil {
			return nil, err
		}
		return expr.NewNot(p), nil
	case *algebra.Between:
		if t.Lo.Null || t.Hi.Null {
			return neverPred{}, nil // NULL bound: never true
		}
		e, err := c.scalar(t.In, in)
		if err != nil {
			return nil, err
		}
		return expr.NewBetween(e, t.Lo, t.Hi)
	case *algebra.Like:
		e, err := c.scalar(t.In, in)
		if err != nil {
			return nil, err
		}
		return expr.NewLike(e, t.Pattern, t.Negate)
	case *algebra.In:
		e, err := c.scalar(t.In, in)
		if err != nil {
			return nil, err
		}
		// NULL members match nothing in SQL; drop them so the raw-
		// compare kernel cannot match a row on a zero safe value.
		list := t.List
		for _, v := range list {
			if v.Null {
				list = nil
				for _, w := range t.List {
					if !w.Null {
						list = append(list, w)
					}
				}
				break
			}
		}
		if len(list) == 0 {
			return neverPred{}, nil
		}
		return expr.NewInSet(e, list)
	case *algebra.Cmp:
		// col OP literal → constant kernel; else column-column kernel.
		// A NULL literal compares as never-true (SQL three-valued
		// logic), matching the prune synthesis for the same conjunct.
		if lit, ok := t.R.(*algebra.Lit); ok {
			if lit.Val.Null {
				return neverPred{}, nil
			}
			e, err := c.scalar(t.L, in)
			if err != nil {
				return nil, err
			}
			return expr.NewCmpConst(e, expr.CmpOp(t.Op), lit.Val)
		}
		if lit, ok := t.L.(*algebra.Lit); ok {
			if lit.Val.Null {
				return neverPred{}, nil
			}
			e, err := c.scalar(t.R, in)
			if err != nil {
				return nil, err
			}
			return expr.NewCmpConst(e, expr.CmpOp(t.Op).Flip(), lit.Val)
		}
		l, err := c.scalar(t.L, in)
		if err != nil {
			return nil, err
		}
		r, err := c.scalar(t.R, in)
		if err != nil {
			return nil, err
		}
		return expr.NewCmpCols(l, expr.CmpOp(t.Op), r)
	case *algebra.IsNull:
		col, ok := t.In.(*algebra.ColRef)
		if !ok {
			return nil, fmt.Errorf("xcompile: IS NULL supported on columns only")
		}
		return &nullPred{idx: col.Idx, negate: t.Negate}, nil
	default:
		// Generic fallback: evaluate as boolean map, then select.
		e, err := c.scalar(s, in)
		if err != nil {
			return nil, err
		}
		return expr.NewBoolPred(e)
	}
}
