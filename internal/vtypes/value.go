package vtypes

import (
	"fmt"
	"hash/maphash"
	"strconv"
)

// Value is a boxed scalar used by the row-at-a-time baseline engine, the
// SQL layer (literals) and test infrastructure. The vectorized engine
// never allocates Values in its inner loops; that difference is precisely
// the interpretation overhead the paper quantifies.
type Value struct {
	Kind Kind
	Null bool
	I64  int64   // payload for KindI64 / KindDate
	F64  float64 // payload for KindF64
	Str  string  // payload for KindStr
	B    bool    // payload for KindBool
}

// NullValue returns the NULL of the given kind.
func NullValue(k Kind) Value { return Value{Kind: k, Null: true} }

// I64Value boxes an int64.
func I64Value(v int64) Value { return Value{Kind: KindI64, I64: v} }

// F64Value boxes a float64.
func F64Value(v float64) Value { return Value{Kind: KindF64, F64: v} }

// StrValue boxes a string.
func StrValue(v string) Value { return Value{Kind: KindStr, Str: v} }

// BoolValue boxes a bool.
func BoolValue(v bool) Value { return Value{Kind: KindBool, B: v} }

// DateValue boxes a date expressed in days since 1970-01-01.
func DateValue(days int64) Value { return Value{Kind: KindDate, I64: days} }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.Null }

// AsFloat coerces a numeric value to float64 (ints widen).
func (v Value) AsFloat() float64 {
	if v.Kind == KindF64 {
		return v.F64
	}
	return float64(v.I64)
}

// AsInt coerces a numeric value to int64 (floats truncate).
func (v Value) AsInt() int64 {
	if v.Kind == KindF64 {
		return int64(v.F64)
	}
	return v.I64
}

// String renders the value for result printing; NULL renders as "NULL".
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Kind {
	case KindI64:
		return strconv.FormatInt(v.I64, 10)
	case KindF64:
		return strconv.FormatFloat(v.F64, 'f', -1, 64)
	case KindStr:
		return v.Str
	case KindBool:
		if v.B {
			return "true"
		}
		return "false"
	case KindDate:
		return FormatDate(v.I64)
	default:
		return fmt.Sprintf("<invalid kind %d>", v.Kind)
	}
}

// Compare orders two non-null values of the same storage class.
// It returns -1, 0 or 1. NULLs sort first (SQL NULLS FIRST default of
// the engine); comparing a NULL with anything yields -1/0/1 by null flag.
func (v Value) Compare(o Value) int {
	if v.Null || o.Null {
		switch {
		case v.Null && o.Null:
			return 0
		case v.Null:
			return -1
		default:
			return 1
		}
	}
	switch v.Kind.StorageClass() {
	case ClassI64:
		switch {
		case v.I64 < o.I64:
			return -1
		case v.I64 > o.I64:
			return 1
		}
		return 0
	case ClassF64:
		switch {
		case v.F64 < o.F64:
			return -1
		case v.F64 > o.F64:
			return 1
		}
		return 0
	case ClassStr:
		switch {
		case v.Str < o.Str:
			return -1
		case v.Str > o.Str:
			return 1
		}
		return 0
	case ClassBool:
		switch {
		case !v.B && o.B:
			return -1
		case v.B && !o.B:
			return 1
		}
		return 0
	}
	return 0
}

// Equal reports value equality; NULL equals NULL only for grouping
// purposes (SQL GROUP BY treats NULLs as one group), which is how the
// engines use this method.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// Row is a tuple of boxed values; the unit of work of the tuple engine.
type Row []Value

// Clone copies the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// hashSeed seeds row hashing; fixed so tests are deterministic within a
// process (maphash seeds differ across processes, which is fine).
var hashSeed = maphash.MakeSeed()

// Hash hashes the row for grouping/joining in the baseline engines.
func (r Row) Hash() uint64 {
	var h maphash.Hash
	h.SetSeed(hashSeed)
	var buf [8]byte
	for _, v := range r {
		if v.Null {
			_ = h.WriteByte(0xff)
			continue
		}
		switch v.Kind.StorageClass() {
		case ClassI64:
			putU64(&buf, uint64(v.I64))
			_, _ = h.Write(buf[:])
		case ClassF64:
			putU64(&buf, mathFloat64bits(v.F64))
			_, _ = h.Write(buf[:])
		case ClassStr:
			_, _ = h.WriteString(v.Str)
			_ = h.WriteByte(0)
		case ClassBool:
			if v.B {
				_ = h.WriteByte(1)
			} else {
				_ = h.WriteByte(2)
			}
		}
	}
	return h.Sum64()
}

func putU64(buf *[8]byte, v uint64) {
	buf[0] = byte(v)
	buf[1] = byte(v >> 8)
	buf[2] = byte(v >> 16)
	buf[3] = byte(v >> 24)
	buf[4] = byte(v >> 32)
	buf[5] = byte(v >> 40)
	buf[6] = byte(v >> 48)
	buf[7] = byte(v >> 56)
}
