package vtypes

import (
	"fmt"
	"math"
)

// Dates are stored as int64 days since the Unix epoch (1970-01-01).
// The conversion uses Howard Hinnant's civil-days algorithm, which is
// exact over the whole proleptic Gregorian calendar and needs no
// time.Time (keeping the storage class a plain integer, as X100 does).

// mathFloat64bits is a tiny indirection so value.go does not import math
// twice in documentation examples.
func mathFloat64bits(f float64) uint64 { return math.Float64bits(f) }

// DaysFromCivil converts a civil date to days since 1970-01-01.
func DaysFromCivil(y int, m int, d int) int64 {
	yy := int64(y)
	if m <= 2 {
		yy--
	}
	var era int64
	if yy >= 0 {
		era = yy / 400
	} else {
		era = (yy - 399) / 400
	}
	yoe := yy - era*400 // [0, 399]
	var mp int64
	if m > 2 {
		mp = int64(m) - 3
	} else {
		mp = int64(m) + 9
	}
	doy := (153*mp+2)/5 + int64(d) - 1     // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy // [0, 146096]
	return era*146097 + doe - 719468       // shift epoch to 1970-01-01
}

// CivilFromDays converts days since 1970-01-01 back to a civil date.
func CivilFromDays(z int64) (y int, m int, d int) {
	z += 719468
	var era int64
	if z >= 0 {
		era = z / 146097
	} else {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097                                  // [0, 146096]
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365 // [0, 399]
	yy := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100) // [0, 365]
	mp := (5*doy + 2) / 153                  // [0, 11]
	d = int(doy - (153*mp+2)/5 + 1)
	if mp < 10 {
		m = int(mp + 3)
	} else {
		m = int(mp - 9)
	}
	if m <= 2 {
		yy++
	}
	return int(yy), m, d
}

// ParseDate parses "YYYY-MM-DD" into days since epoch.
func ParseDate(s string) (int64, error) {
	if len(s) != 10 || s[4] != '-' || s[7] != '-' {
		return 0, fmt.Errorf("vtypes: invalid date %q (want YYYY-MM-DD)", s)
	}
	num := func(sub string) (int, error) {
		n := 0
		for i := 0; i < len(sub); i++ {
			c := sub[i]
			if c < '0' || c > '9' {
				return 0, fmt.Errorf("vtypes: invalid date %q", s)
			}
			n = n*10 + int(c-'0')
		}
		return n, nil
	}
	y, err := num(s[0:4])
	if err != nil {
		return 0, err
	}
	m, err := num(s[5:7])
	if err != nil {
		return 0, err
	}
	d, err := num(s[8:10])
	if err != nil {
		return 0, err
	}
	if m < 1 || m > 12 || d < 1 || d > 31 {
		return 0, fmt.Errorf("vtypes: out-of-range date %q", s)
	}
	return DaysFromCivil(y, m, d), nil
}

// MustParseDate is ParseDate that panics on malformed input; used for
// compile-time-constant dates in tests and the TPC-H generator.
func MustParseDate(s string) int64 {
	d, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return d
}

// FormatDate renders days-since-epoch as "YYYY-MM-DD".
func FormatDate(days int64) string {
	y, m, d := CivilFromDays(days)
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}

// AddMonths adds n calendar months to a date, clamping the day to the
// last valid day of the target month (SQL interval semantics).
func AddMonths(days int64, n int) int64 {
	y, m, d := CivilFromDays(days)
	tot := y*12 + (m - 1) + n
	ny, nm := tot/12, tot%12+1
	if nm <= 0 { // negative month arithmetic
		nm += 12
		ny--
	}
	if d > daysInMonth(ny, nm) {
		d = daysInMonth(ny, nm)
	}
	return DaysFromCivil(ny, nm, d)
}

func daysInMonth(y, m int) int {
	switch m {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	default:
		if (y%4 == 0 && y%100 != 0) || y%400 == 0 {
			return 29
		}
		return 28
	}
}

// Year returns the calendar year of a date, vectorizable as an integer
// primitive (used by TPC-H Q7/Q8/Q9-style EXTRACT).
func Year(days int64) int64 {
	y, _, _ := CivilFromDays(days)
	return int64(y)
}
