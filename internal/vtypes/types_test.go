package vtypes

import (
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindI64: "BIGINT", KindF64: "DOUBLE", KindStr: "VARCHAR",
		KindBool: "BOOLEAN", KindDate: "DATE",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestStorageClass(t *testing.T) {
	if KindDate.StorageClass() != ClassI64 {
		t.Fatal("dates must share the int64 storage class")
	}
	if KindI64.StorageClass() != ClassI64 || KindF64.StorageClass() != ClassF64 ||
		KindStr.StorageClass() != ClassStr || KindBool.StorageClass() != ClassBool {
		t.Fatal("storage class mapping broken")
	}
	if KindInvalid.StorageClass() != ClassInvalid {
		t.Fatal("invalid kind must map to invalid class")
	}
}

func TestNumericComparable(t *testing.T) {
	if !KindI64.Numeric() || !KindF64.Numeric() || KindStr.Numeric() || KindDate.Numeric() {
		t.Fatal("Numeric() wrong")
	}
	if !KindDate.Comparable() || !KindStr.Comparable() || KindBool.Comparable() {
		t.Fatal("Comparable() wrong")
	}
}

func TestSchemaBasics(t *testing.T) {
	s := NewSchema(
		Column{Name: "a", Kind: KindI64},
		Column{Name: "b", Kind: KindStr, Nullable: true},
		Column{Name: "c", Kind: KindF64},
	)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.ColIndex("b") != 1 || s.ColIndex("zz") != -1 {
		t.Fatal("ColIndex wrong")
	}
	p := s.Project([]int{2, 0})
	if p.Len() != 2 || p.Col(0).Name != "c" || p.Col(1).Name != "a" {
		t.Fatalf("Project wrong: %v", p)
	}
	c := s.Clone()
	c.Cols[0].Name = "changed"
	if s.Col(0).Name != "a" {
		t.Fatal("Clone must deep-copy columns")
	}
	want := "(a BIGINT, b VARCHAR NULL, c DOUBLE)"
	if s.String() != want {
		t.Fatalf("String() = %q, want %q", s.String(), want)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{I64Value(-42), "-42"},
		{F64Value(2.5), "2.5"},
		{StrValue("hi"), "hi"},
		{BoolValue(true), "true"},
		{BoolValue(false), "false"},
		{DateValue(0), "1970-01-01"},
		{NullValue(KindI64), "NULL"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	if I64Value(1).Compare(I64Value(2)) != -1 || I64Value(2).Compare(I64Value(1)) != 1 ||
		I64Value(3).Compare(I64Value(3)) != 0 {
		t.Fatal("int compare wrong")
	}
	if F64Value(1.5).Compare(F64Value(2.5)) != -1 {
		t.Fatal("float compare wrong")
	}
	if StrValue("a").Compare(StrValue("b")) != -1 {
		t.Fatal("string compare wrong")
	}
	if BoolValue(false).Compare(BoolValue(true)) != -1 {
		t.Fatal("bool compare wrong")
	}
	// NULLs sort first and equal each other.
	if NullValue(KindI64).Compare(I64Value(0)) != -1 ||
		I64Value(0).Compare(NullValue(KindI64)) != 1 ||
		NullValue(KindI64).Compare(NullValue(KindI64)) != 0 {
		t.Fatal("null ordering wrong")
	}
}

func TestValueCoercions(t *testing.T) {
	if I64Value(7).AsFloat() != 7.0 || F64Value(7.9).AsFloat() != 7.9 {
		t.Fatal("AsFloat wrong")
	}
	if F64Value(7.9).AsInt() != 7 || I64Value(7).AsInt() != 7 {
		t.Fatal("AsInt wrong")
	}
}

func TestRowHashDistinguishes(t *testing.T) {
	a := Row{I64Value(1), StrValue("x")}
	b := Row{I64Value(1), StrValue("y")}
	c := Row{I64Value(1), StrValue("x")}
	if a.Hash() != c.Hash() {
		t.Fatal("equal rows must hash equal")
	}
	if a.Hash() == b.Hash() {
		t.Fatal("hash collision on trivially different rows (suspicious)")
	}
	// Field-boundary confusion check: ("ab","c") vs ("a","bc").
	x := Row{StrValue("ab"), StrValue("c")}
	y := Row{StrValue("a"), StrValue("bc")}
	if x.Hash() == y.Hash() {
		t.Fatal("row hash must delimit string fields")
	}
	// Null vs zero must differ.
	n := Row{NullValue(KindI64)}
	z := Row{I64Value(0)}
	if n.Hash() == z.Hash() {
		t.Fatal("NULL must not hash like zero")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{I64Value(1)}
	c := r.Clone()
	c[0] = I64Value(9)
	if r[0].I64 != 1 {
		t.Fatal("Clone must copy")
	}
}

func TestDateRoundtripKnown(t *testing.T) {
	cases := []struct {
		s    string
		days int64
	}{
		{"1970-01-01", 0},
		{"1970-01-02", 1},
		{"1969-12-31", -1},
		{"2000-02-29", 11016},
		{"1998-12-01", 10561},
	}
	for _, c := range cases {
		got, err := ParseDate(c.s)
		if err != nil {
			t.Fatalf("ParseDate(%q): %v", c.s, err)
		}
		if got != c.days {
			t.Errorf("ParseDate(%q) = %d, want %d", c.s, got, c.days)
		}
		if back := FormatDate(c.days); back != c.s {
			t.Errorf("FormatDate(%d) = %q, want %q", c.days, back, c.s)
		}
	}
}

func TestDateMatchesTimePackage(t *testing.T) {
	// Cross-check the civil-days conversion against the stdlib over a
	// wide range of dates (every 97 days over ~60 years).
	base := time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)
	for d := int64(-4000); d < 20000; d += 97 {
		tm := base.AddDate(0, 0, int(d))
		want := DaysFromCivil(tm.Year(), int(tm.Month()), tm.Day())
		if want != d {
			t.Fatalf("DaysFromCivil(%v) = %d, want %d", tm, want, d)
		}
		y, m, dd := CivilFromDays(d)
		if y != tm.Year() || m != int(tm.Month()) || dd != tm.Day() {
			t.Fatalf("CivilFromDays(%d) = %d-%d-%d, want %v", d, y, m, dd, tm)
		}
	}
}

func TestDateRoundtripProperty(t *testing.T) {
	f := func(n int32) bool {
		d := int64(n % 100000)
		y, m, dd := CivilFromDays(d)
		return DaysFromCivil(y, m, dd) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseDateErrors(t *testing.T) {
	for _, bad := range []string{"", "1998-1-01", "19981201", "1998/12/01", "1998-13-01", "1998-00-10", "1998-12-40", "abcd-ef-gh"} {
		if _, err := ParseDate(bad); err == nil {
			t.Errorf("ParseDate(%q) should fail", bad)
		}
	}
}

func TestAddMonths(t *testing.T) {
	d := MustParseDate("1998-12-01")
	if FormatDate(AddMonths(d, 3)) != "1999-03-01" {
		t.Fatal("AddMonths +3 wrong")
	}
	if FormatDate(AddMonths(d, -12)) != "1997-12-01" {
		t.Fatal("AddMonths -12 wrong")
	}
	// Clamp: Jan 31 + 1 month = Feb 28/29.
	if FormatDate(AddMonths(MustParseDate("1999-01-31"), 1)) != "1999-02-28" {
		t.Fatal("AddMonths must clamp to month end")
	}
	if FormatDate(AddMonths(MustParseDate("2000-01-31"), 1)) != "2000-02-29" {
		t.Fatal("AddMonths must clamp to leap month end")
	}
}

func TestYear(t *testing.T) {
	if Year(MustParseDate("1995-06-17")) != 1995 {
		t.Fatal("Year wrong")
	}
}

func TestMustParseDatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseDate should panic on bad input")
		}
	}()
	MustParseDate("nope")
}
