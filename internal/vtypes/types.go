// Package vtypes defines the value type system shared by every layer of
// the Vectorwise reproduction: the storage format, the vectorized engine,
// and the row-at-a-time / column-at-a-time baseline engines.
//
// The engine supports five logical kinds. Dates are a distinct logical
// kind (so the SQL layer can type-check date arithmetic) but share the
// int64 storage class, counting days since the Unix epoch; this lets all
// integer kernels operate on dates unchanged, exactly as X100 maps dates
// onto its integer primitives.
package vtypes

import "fmt"

// Kind identifies a logical column type.
type Kind uint8

// The logical kinds supported by the engine.
const (
	// KindInvalid is the zero Kind; it is never valid in a schema.
	KindInvalid Kind = iota
	// KindI64 is a 64-bit signed integer.
	KindI64
	// KindF64 is a 64-bit IEEE-754 float. TPC-H decimals map onto it
	// (documented substitution: Go has no fast fixed-point decimal and
	// the paper's claims do not depend on decimal rounding).
	KindF64
	// KindStr is a variable-length UTF-8 string.
	KindStr
	// KindBool is a boolean.
	KindBool
	// KindDate is a calendar date stored as days since 1970-01-01.
	KindDate
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindI64:
		return "BIGINT"
	case KindF64:
		return "DOUBLE"
	case KindStr:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	case KindDate:
		return "DATE"
	default:
		return fmt.Sprintf("INVALID(%d)", uint8(k))
	}
}

// Class is the physical storage class backing a logical kind.
type Class uint8

// Storage classes. Every kernel is written once per class.
const (
	ClassInvalid Class = iota
	ClassI64           // int64 slice (KindI64, KindDate)
	ClassF64           // float64 slice
	ClassStr           // string slice
	ClassBool          // bool slice
)

// StorageClass maps a logical kind to its physical storage class.
func (k Kind) StorageClass() Class {
	switch k {
	case KindI64, KindDate:
		return ClassI64
	case KindF64:
		return ClassF64
	case KindStr:
		return ClassStr
	case KindBool:
		return ClassBool
	default:
		return ClassInvalid
	}
}

// Numeric reports whether the kind participates in arithmetic.
func (k Kind) Numeric() bool { return k == KindI64 || k == KindF64 }

// Comparable reports whether values of the kind can be ordered with < .
func (k Kind) Comparable() bool { return k != KindBool && k != KindInvalid }

// Column describes one column of a schema.
type Column struct {
	// Name is the column name, lower-cased by the SQL layer.
	Name string
	// Kind is the logical type.
	Kind Kind
	// Nullable records whether NULLs may appear. Per the paper, NULLs
	// are stored as a separate indicator column plus a "safe" value;
	// the rewriter decomposes NULLable expressions so kernels never
	// see NULLs.
	Nullable bool
}

// Schema is an ordered set of columns.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return &Schema{Cols: cols} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Cols) }

// ColIndex returns the index of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Col returns the column at index i.
func (s *Schema) Col(i int) Column { return s.Cols[i] }

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	cols := make([]Column, len(s.Cols))
	copy(cols, s.Cols)
	return &Schema{Cols: cols}
}

// Project returns a new schema with only the given column indexes.
func (s *Schema) Project(idxs []int) *Schema {
	cols := make([]Column, len(idxs))
	for i, ix := range idxs {
		cols[i] = s.Cols[ix]
	}
	return &Schema{Cols: cols}
}

// String renders the schema as "(name TYPE, ...)".
func (s *Schema) String() string {
	out := "("
	for i, c := range s.Cols {
		if i > 0 {
			out += ", "
		}
		out += c.Name + " " + c.Kind.String()
		if c.Nullable {
			out += " NULL"
		}
	}
	return out + ")"
}
