// Package compress implements the light-weight column compression schemes
// Vectorwise inherited from the "Super-Scalar RAM-CPU Cache Compression"
// work (paper ref [2]): PFOR (patched frame-of-reference), PFOR-DELTA,
// PDICT (dictionary coding) and RLE, plus plain fallbacks. The design
// goal is the one the paper states: decompression so cheap that scans
// stay CPU-bound even when fed from compressed disk blocks, which is
// what made the X100 engine I/O-balanced.
//
// Every compressed chunk is framed as:
//
//	byte 0:   codec tag
//	bytes 1-4: row count (little-endian uint32)
//	bytes 5+: codec payload
//
// so a chunk is self-describing and decoders can be picked per chunk.
package compress

import "encoding/binary"

// packBits appends len(vals) values of the given bit width (1..64) to
// dst, bit-addressed little-endian. Each value is written at bit offset
// i*width; a value may straddle the 64-bit load window, in which case
// its top bits land in a ninth byte. Values wider than `width` bits are
// masked (the PFOR caller patches such exceptions separately).
func packBits(dst []byte, vals []uint64, width uint) []byte {
	if width == 0 {
		return dst
	}
	start := len(dst)
	dst = append(dst, make([]byte, packedLen(len(vals), width))...)
	buf := dst[start:]
	mask := widthMask(width)
	for i, v := range vals {
		v &= mask
		bitpos := uint(i) * width
		bytepos := int(bitpos >> 3)
		shift := bitpos & 7
		cur := v << shift
		nb := int((shift + width + 7) / 8)
		for k := 0; k < nb && k < 8; k++ {
			buf[bytepos+k] |= byte(cur >> (8 * uint(k)))
		}
		if shift+width > 64 {
			buf[bytepos+8] |= byte(v >> (64 - shift))
		}
	}
	return dst
}

// unpackBits decodes n values of the given width from src into dst and
// returns the number of source bytes consumed.
func unpackBits(dst []uint64, src []byte, n int, width uint) int {
	if width == 0 {
		for i := 0; i < n; i++ {
			dst[i] = 0
		}
		return 0
	}
	mask := widthMask(width)
	for i := 0; i < n; i++ {
		bitpos := uint(i) * width
		bytepos := int(bitpos >> 3)
		shift := bitpos & 7
		v := loadLE64(src, bytepos) >> shift
		if shift+width > 64 {
			v |= uint64(src[bytepos+8]) << (64 - shift)
		}
		dst[i] = v & mask
	}
	return packedLen(n, width)
}

// loadLE64 loads up to 8 bytes little-endian starting at pos, padding
// with zeros past the end of src.
func loadLE64(src []byte, pos int) uint64 {
	if pos+8 <= len(src) {
		return binary.LittleEndian.Uint64(src[pos:])
	}
	var v uint64
	for k := 0; pos+k < len(src); k++ {
		v |= uint64(src[pos+k]) << (8 * uint(k))
	}
	return v
}

// widthMask returns a mask of the low `width` bits (width in 1..64).
func widthMask(width uint) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << width) - 1
}

// bitsNeeded returns the minimal width that represents v (at least 0,
// at most 64).
func bitsNeeded(v uint64) uint {
	var b uint
	for v != 0 {
		v >>= 1
		b++
	}
	return b
}

// packedLen returns the byte length of n values at the given width.
func packedLen(n int, width uint) int {
	return (n*int(width) + 7) / 8
}

// zigzag maps signed integers to unsigned so small magnitudes stay small.
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendUvarint appends a varint to dst.
func appendUvarint(dst []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return append(dst, buf[:n]...)
}
