package compress

import (
	"encoding/binary"
	"fmt"
)

// PFOR — patched frame-of-reference.
//
// All values are rebased against the chunk minimum, then bit-packed at a
// width chosen so that "most" values fit; the few that do not (outliers,
// e.g. one huge key in a column of small ones) are stored verbatim in an
// exception list and patched over the packed output after unpacking.
// This is the scheme of paper ref [2]; the exception list keeps the
// packed width small without being hostage to outliers.
//
// Payload layout (after the common frame header):
//
//	base    int64  (little-endian)
//	width   byte   (0..64)
//	nexc    uvarint
//	packed  packedLen(n,width) bytes
//	exceptions: nexc × (position uvarint-delta, value uvarint)
//
// Exception positions are delta-coded since they are ascending.

// encodePFOR appends the PFOR payload for vals to dst.
func encodePFOR(dst []byte, vals []int64) []byte {
	n := len(vals)
	base := vals[0]
	for _, v := range vals {
		if v < base {
			base = v
		}
	}
	deltas := make([]uint64, n)
	for i, v := range vals {
		deltas[i] = uint64(v - base)
	}
	width := choosePFORWidth(deltas)
	mask := widthMask(width)

	var head [9]byte
	binary.LittleEndian.PutUint64(head[0:8], uint64(base))
	head[8] = byte(width)
	dst = append(dst, head[:]...)

	// Collect exceptions, then clear their high bits so packing is safe.
	var excPos []int
	for i, d := range deltas {
		if d > mask {
			excPos = append(excPos, i)
		}
	}
	dst = appendUvarint(dst, uint64(len(excPos)))
	packed := make([]uint64, n)
	copy(packed, deltas)
	for _, p := range excPos {
		packed[p] &= mask
	}
	dst = packBits(dst, packed, width)
	prev := 0
	for _, p := range excPos {
		dst = appendUvarint(dst, uint64(p-prev))
		prev = p
		dst = appendUvarint(dst, deltas[p])
	}
	return dst
}

// decodePFOR decodes a PFOR payload of n values into dst.
func decodePFOR(dst []int64, src []byte, n int) error {
	if len(src) < 9 {
		return fmt.Errorf("compress: truncated PFOR header")
	}
	base := int64(binary.LittleEndian.Uint64(src[0:8]))
	width := uint(src[8])
	if width > 64 {
		return fmt.Errorf("compress: invalid PFOR width %d", width)
	}
	src = src[9:]
	nexc, k := binary.Uvarint(src)
	if k <= 0 {
		return fmt.Errorf("compress: truncated PFOR exception count")
	}
	src = src[k:]
	plen := packedLen(n, width)
	if len(src) < plen {
		return fmt.Errorf("compress: truncated PFOR payload")
	}
	tmp := make([]uint64, n)
	unpackBits(tmp, src, n, width)
	src = src[plen:]
	pos := 0
	for e := uint64(0); e < nexc; e++ {
		dp, k1 := binary.Uvarint(src)
		if k1 <= 0 {
			return fmt.Errorf("compress: truncated PFOR exception")
		}
		src = src[k1:]
		v, k2 := binary.Uvarint(src)
		if k2 <= 0 {
			return fmt.Errorf("compress: truncated PFOR exception value")
		}
		src = src[k2:]
		pos += int(dp)
		if pos >= n {
			return fmt.Errorf("compress: PFOR exception position %d out of range", pos)
		}
		tmp[pos] = v
	}
	for i := 0; i < n; i++ {
		dst[i] = base + int64(tmp[i])
	}
	return nil
}

// choosePFORWidth picks the packed width minimizing estimated size:
// packed bits plus ~10 bytes per exception.
func choosePFORWidth(deltas []uint64) uint {
	n := len(deltas)
	// Histogram of required widths.
	var hist [65]int
	maxw := uint(0)
	for _, d := range deltas {
		b := bitsNeeded(d)
		hist[b]++
		if b > maxw {
			maxw = b
		}
	}
	best := maxw
	bestSize := packedLen(n, maxw)
	exceptions := 0
	for w := int(maxw) - 1; w >= 0; w-- {
		exceptions += hist[w+1]
		size := packedLen(n, uint(w)) + exceptions*10
		if size < bestSize {
			bestSize = size
			best = uint(w)
		}
	}
	return best
}

// estimatePFORSize returns the approximate encoded size without encoding,
// used by codec selection.
func estimatePFORSize(vals []int64) int {
	if len(vals) == 0 {
		return 16
	}
	base := vals[0]
	for _, v := range vals {
		if v < base {
			base = v
		}
	}
	var hist [65]int
	maxw := uint(0)
	for _, v := range vals {
		b := bitsNeeded(uint64(v - base))
		hist[b]++
		if b > maxw {
			maxw = b
		}
	}
	n := len(vals)
	best := packedLen(n, maxw)
	exceptions := 0
	for w := int(maxw) - 1; w >= 0; w-- {
		exceptions += hist[w+1]
		size := packedLen(n, uint(w)) + exceptions*10
		if size < best {
			best = size
		}
	}
	return best + 16
}

// PFOR-DELTA: consecutive differences (zigzag for sign) are themselves
// PFOR-coded. Ideal for sorted or clustered columns such as primary keys
// and dates laid down in load order — exactly the columns the paper's
// storage targets.

// encodePFORDelta appends the PFOR-DELTA payload for vals.
func encodePFORDelta(dst []byte, vals []int64) []byte {
	n := len(vals)
	deltas := make([]int64, n)
	prev := int64(0)
	for i, v := range vals {
		deltas[i] = int64(zigzag(v - prev))
		prev = v
	}
	return encodePFOR(dst, deltas)
}

// decodePFORDelta decodes a PFOR-DELTA payload of n values into dst.
func decodePFORDelta(dst []int64, src []byte, n int) error {
	if err := decodePFOR(dst, src, n); err != nil {
		return err
	}
	prev := int64(0)
	for i := 0; i < n; i++ {
		prev += unzigzag(uint64(dst[i]))
		dst[i] = prev
	}
	return nil
}

// estimatePFORDeltaSize mirrors estimatePFORSize on the delta stream.
func estimatePFORDeltaSize(vals []int64) int {
	if len(vals) == 0 {
		return 16
	}
	deltas := make([]int64, len(vals))
	prev := int64(0)
	for i, v := range vals {
		deltas[i] = int64(zigzag(v - prev))
		prev = v
	}
	return estimatePFORSize(deltas)
}
