package compress

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBitPackRoundtrip(t *testing.T) {
	for _, width := range []uint{1, 3, 7, 8, 13, 31, 33, 63, 64} {
		vals := make([]uint64, 100)
		rng := rand.New(rand.NewSource(int64(width)))
		for i := range vals {
			vals[i] = rng.Uint64() & widthMask(width)
		}
		packed := packBits(nil, vals, width)
		if len(packed) != packedLen(len(vals), width) {
			t.Fatalf("width %d: packed length %d, want %d", width, len(packed), packedLen(len(vals), width))
		}
		out := make([]uint64, len(vals))
		unpackBits(out, packed, len(vals), width)
		if !reflect.DeepEqual(vals, out) {
			t.Fatalf("width %d: roundtrip mismatch", width)
		}
	}
}

func TestBitPackWidthZero(t *testing.T) {
	out := []uint64{7, 7}
	if n := unpackBits(out, nil, 2, 0); n != 0 || out[0] != 0 || out[1] != 0 {
		t.Fatal("width-0 unpack must zero dst")
	}
	if got := packBits(nil, []uint64{1, 2}, 0); len(got) != 0 {
		t.Fatal("width-0 pack must emit nothing")
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 2, -2, math.MaxInt64, math.MinInt64} {
		if unzigzag(zigzag(v)) != v {
			t.Fatalf("zigzag roundtrip fails for %d", v)
		}
	}
	if zigzag(0) != 0 || zigzag(-1) != 1 || zigzag(1) != 2 {
		t.Fatal("zigzag mapping not canonical")
	}
}

func TestBitsNeeded(t *testing.T) {
	cases := map[uint64]uint{0: 0, 1: 1, 2: 2, 3: 2, 255: 8, 256: 9, math.MaxUint64: 64}
	for v, want := range cases {
		if got := bitsNeeded(v); got != want {
			t.Errorf("bitsNeeded(%d) = %d, want %d", v, got, want)
		}
	}
}

func roundtripI64(t *testing.T, vals []int64, codec Codec) []byte {
	t.Helper()
	data, err := CompressI64(vals, codec)
	if err != nil {
		t.Fatalf("%v compress: %v", codec, err)
	}
	out, err := DecompressI64(nil, data)
	if err != nil {
		t.Fatalf("%v decompress: %v", codec, err)
	}
	if len(out) != len(vals) {
		t.Fatalf("%v: wrong length %d want %d", codec, len(out), len(vals))
	}
	for i := range vals {
		if out[i] != vals[i] {
			t.Fatalf("%v: value %d mismatch: %d want %d", codec, i, out[i], vals[i])
		}
	}
	return data
}

func TestI64CodecsRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	datasets := map[string][]int64{
		"empty":     {},
		"single":    {42},
		"constant":  {9, 9, 9, 9, 9, 9, 9},
		"small":     {1, 5, 3, 2, 4, 0, 7, 6},
		"negatives": {-5, -1, -1000000, 3, 0},
		"sorted":    sortedInts(1000),
		"outliers":  withOutliers(rng, 1000),
		"random":    randomInts(rng, 1000),
		"extremes":  {math.MinInt64, math.MaxInt64, 0, -1, 1},
	}
	for name, vals := range datasets {
		for _, codec := range []Codec{CodecPlainI64, CodecPFOR, CodecPFORDelta, CodecRLE} {
			t.Run(name+"/"+codec.String(), func(t *testing.T) {
				roundtripI64(t, vals, codec)
			})
		}
	}
}

func sortedInts(n int) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(1000 + i*3)
	}
	return v
}

func withOutliers(rng *rand.Rand, n int) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(rng.Intn(100))
		if i%97 == 0 {
			v[i] = int64(rng.Uint64() >> 1) // huge outlier
		}
	}
	return v
}

func randomInts(rng *rand.Rand, n int) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(rng.Uint64())
	}
	return v
}

func TestPFORCompressesSmallDomains(t *testing.T) {
	// 10k values in [0,16): PFOR should use ~4 bits/value vs 64 plain.
	vals := make([]int64, 10000)
	rng := rand.New(rand.NewSource(1))
	for i := range vals {
		vals[i] = int64(rng.Intn(16))
	}
	data := roundtripI64(t, vals, CodecPFOR)
	plain, _ := CompressI64(vals, CodecPlainI64)
	ratio := float64(len(plain)) / float64(len(data))
	if ratio < 8 {
		t.Fatalf("PFOR ratio %.1f too low (plain %d, pfor %d)", ratio, len(plain), len(data))
	}
}

func TestPFORDeltaCompressesSorted(t *testing.T) {
	vals := sortedInts(10000)
	data := roundtripI64(t, vals, CodecPFORDelta)
	pforOnly, _ := CompressI64(vals, CodecPFOR)
	if len(data) >= len(pforOnly) {
		t.Fatalf("PFOR-DELTA (%d) should beat PFOR (%d) on sorted data", len(data), len(pforOnly))
	}
}

func TestPFORExceptionsPatched(t *testing.T) {
	// Mostly tiny values with a handful of huge ones: the exceptions
	// path must restore the huge values exactly.
	vals := make([]int64, 512)
	for i := range vals {
		vals[i] = int64(i % 7)
	}
	vals[100] = math.MaxInt64 / 2
	vals[200] = math.MaxInt64 / 3
	vals[511] = math.MaxInt64
	roundtripI64(t, vals, CodecPFOR)
}

func TestRLECompressesRuns(t *testing.T) {
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = int64(i / 1000) // 10 runs of 1000
	}
	data := roundtripI64(t, vals, CodecRLE)
	if len(data) > 200 {
		t.Fatalf("RLE output %d bytes for 10 runs — too large", len(data))
	}
}

func TestF64Roundtrip(t *testing.T) {
	vals := []float64{0, -0.0, 1.5, math.Pi, math.Inf(1), math.Inf(-1), math.MaxFloat64}
	data, err := CompressF64(vals)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecompressF64(nil, data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Float64bits(out[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("f64 mismatch at %d", i)
		}
	}
	// NaN preserves bit pattern.
	nan := []float64{math.NaN()}
	d2, _ := CompressF64(nan)
	o2, _ := DecompressF64(nil, d2)
	if !math.IsNaN(o2[0]) {
		t.Fatal("NaN lost")
	}
}

func TestStrRoundtrip(t *testing.T) {
	datasets := map[string][]string{
		"empty":    {},
		"plainish": {"alpha", "beta", "", "delta with spaces", "unicode ✓"},
		"lowcard":  manyRepeats(),
	}
	for name, vals := range datasets {
		for _, codec := range []Codec{CodecPlainStr, CodecDict} {
			t.Run(name+"/"+codec.String(), func(t *testing.T) {
				data, err := CompressStr(vals, codec)
				if err != nil {
					t.Fatal(err)
				}
				out, err := DecompressStr(nil, data)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(append([]string{}, vals...), append([]string{}, out...)) {
					t.Fatalf("mismatch: %v vs %v", vals, out)
				}
			})
		}
	}
}

func manyRepeats() []string {
	out := make([]string, 1000)
	words := []string{"RAIL", "AIR", "TRUCK", "SHIP", "MAIL"}
	for i := range out {
		out[i] = words[i%len(words)]
	}
	return out
}

func TestDictFallsBackOnHighCardinality(t *testing.T) {
	vals := make([]string, 100)
	for i := range vals {
		vals[i] = string(rune('a'+i%26)) + string(rune('0'+i/26)) + "x" + string(rune('A'+i%26)) + string(rune('a'+(i*7)%26))
	}
	// All distinct → dict must fall back to plain.
	data, err := CompressStr(vals, CodecDict)
	if err != nil {
		t.Fatal(err)
	}
	codec, _, _, _ := ReadHeader(data)
	if codec != CodecPlainStr {
		t.Fatalf("expected fallback to plain, got %v", codec)
	}
	out, err := DecompressStr(nil, data)
	if err != nil || !reflect.DeepEqual(vals, out) {
		t.Fatal("fallback roundtrip broken")
	}
}

func TestDictCompressesLowCardinality(t *testing.T) {
	vals := manyRepeats()
	dict, _ := CompressStr(vals, CodecDict)
	plain, _ := CompressStr(vals, CodecPlainStr)
	if len(dict)*3 > len(plain) {
		t.Fatalf("dict %d vs plain %d: expected ≥3× savings", len(dict), len(plain))
	}
}

func TestBoolRoundtrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 1000} {
		vals := make([]bool, n)
		for i := range vals {
			vals[i] = i%3 == 0
		}
		data, err := CompressBool(vals)
		if err != nil {
			t.Fatal(err)
		}
		out, err := DecompressBool(nil, data)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != n {
			t.Fatalf("n=%d: got %d", n, len(out))
		}
		for i := range vals {
			if out[i] != vals[i] {
				t.Fatalf("n=%d: bit %d wrong", n, i)
			}
		}
	}
}

func TestChooseI64Codec(t *testing.T) {
	if c := ChooseI64Codec(sortedInts(5000)); c != CodecPFORDelta {
		t.Errorf("sorted data should pick pfor-delta, got %v", c)
	}
	constant := make([]int64, 5000)
	if c := ChooseI64Codec(constant); c != CodecRLE && c != CodecPFORDelta && c != CodecPFOR {
		t.Errorf("constant data picked %v", c)
	}
	rng := rand.New(rand.NewSource(3))
	if c := ChooseI64Codec(randomInts(rng, 5000)); c != CodecPlainI64 && c != CodecPFOR {
		t.Errorf("random data picked %v", c)
	}
	small := make([]int64, 5000)
	for i := range small {
		small[i] = int64(rng.Intn(50))
	}
	if c := ChooseI64Codec(small); c != CodecPFOR {
		t.Errorf("small-domain data should pick pfor, got %v", c)
	}
	if ChooseI64Codec(nil) != CodecPlainI64 {
		t.Error("empty chunk must pick plain")
	}
}

func TestChooseStrCodec(t *testing.T) {
	if ChooseStrCodec(manyRepeats()) != CodecDict {
		t.Error("low-cardinality strings should pick dict")
	}
	uniq := make([]string, 50)
	for i := range uniq {
		uniq[i] = string(rune('a'+i%26)) + string(rune('0'+i))
	}
	if ChooseStrCodec(uniq) != CodecPlainStr {
		t.Error("unique strings should pick plain")
	}
	if ChooseStrCodec(nil) != CodecPlainStr {
		t.Error("empty chunk must pick plain")
	}
}

func TestCorruptChunks(t *testing.T) {
	if _, _, _, err := ReadHeader([]byte{1, 2}); err == nil {
		t.Fatal("short header must error")
	}
	if _, err := DecompressI64(nil, []byte{}); err == nil {
		t.Fatal("empty chunk must error")
	}
	// Wrong codec routed to wrong decoder.
	data, _ := CompressF64([]float64{1})
	if _, err := DecompressI64(nil, data); err == nil {
		t.Fatal("f64 chunk through i64 decoder must error")
	}
	data2, _ := CompressI64([]int64{1, 2, 3}, CodecPFOR)
	if _, err := DecompressF64(nil, data2); err == nil {
		t.Fatal("i64 chunk through f64 decoder must error")
	}
	if _, err := DecompressStr(nil, data2); err == nil {
		t.Fatal("i64 chunk through str decoder must error")
	}
	if _, err := DecompressBool(nil, data2); err == nil {
		t.Fatal("i64 chunk through bool decoder must error")
	}
	// Truncated payloads must error, not panic.
	full, _ := CompressI64(sortedInts(100), CodecPFOR)
	for cut := 5; cut < len(full); cut += 7 {
		if _, err := DecompressI64(nil, full[:cut]); err == nil {
			t.Fatalf("truncation at %d must error", cut)
		}
	}
	fullStr, _ := CompressStr(manyRepeats()[:64], CodecDict)
	for cut := 5; cut < len(fullStr)-1; cut += 5 {
		if _, err := DecompressStr(nil, fullStr[:cut]); err == nil {
			t.Fatalf("dict truncation at %d must error", cut)
		}
	}
	// Unknown codec tags.
	if _, err := CompressI64([]int64{1}, CodecDict); err == nil {
		t.Fatal("string codec on ints must error")
	}
	if _, err := CompressStr([]string{"a"}, CodecPFOR); err == nil {
		t.Fatal("int codec on strings must error")
	}
	bad := []byte{99, 1, 0, 0, 0, 0}
	if _, err := DecompressI64(nil, bad); err == nil {
		t.Fatal("unknown codec must error")
	}
}

func TestI64RoundtripPropertyAllCodecs(t *testing.T) {
	for _, codec := range []Codec{CodecPFOR, CodecPFORDelta, CodecRLE} {
		codec := codec
		f := func(vals []int64) bool {
			data, err := CompressI64(vals, codec)
			if err != nil {
				return false
			}
			out, err := DecompressI64(nil, data)
			if err != nil || len(out) != len(vals) {
				return false
			}
			for i := range vals {
				if out[i] != vals[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%v: %v", codec, err)
		}
	}
}

func TestStrRoundtripProperty(t *testing.T) {
	f := func(vals []string) bool {
		data, err := CompressStr(vals, CodecDict)
		if err != nil {
			return false
		}
		out, err := DecompressStr(nil, data)
		if err != nil || len(out) != len(vals) {
			return false
		}
		for i := range vals {
			if out[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressReusesBuffer(t *testing.T) {
	data, _ := CompressI64([]int64{1, 2, 3}, CodecPlainI64)
	buf := make([]int64, 10)
	out, err := DecompressI64(buf, data)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &buf[0] {
		t.Fatal("must reuse caller buffer when capacity suffices")
	}
}

func TestFrameRowCount(t *testing.T) {
	data, _ := CompressI64([]int64{5, 6, 7}, CodecPFOR)
	_, n, _, err := ReadHeader(data)
	if err != nil || n != 3 {
		t.Fatalf("frame count = %d, err %v", n, err)
	}
	if !bytes.Equal(data[:1], []byte{byte(CodecPFOR)}) {
		t.Fatal("frame codec byte wrong")
	}
}
