package compress

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Codec identifies a chunk encoding.
type Codec uint8

// Chunk codecs. The tag is the first byte of every compressed chunk.
const (
	// CodecPlainI64 stores int64 values verbatim (8 bytes LE each).
	CodecPlainI64 Codec = iota + 1
	// CodecPFOR is patched frame-of-reference bit packing.
	CodecPFOR
	// CodecPFORDelta is PFOR over zigzag consecutive deltas.
	CodecPFORDelta
	// CodecRLE is run-length coding of integers.
	CodecRLE
	// CodecPlainF64 stores float64 bit patterns verbatim.
	CodecPlainF64
	// CodecPlainStr stores length-prefixed string bytes.
	CodecPlainStr
	// CodecDict is PDICT dictionary coding of strings.
	CodecDict
	// CodecBoolPack stores booleans as a bitmap.
	CodecBoolPack
)

// String names the codec for stats output.
func (c Codec) String() string {
	switch c {
	case CodecPlainI64:
		return "plain-i64"
	case CodecPFOR:
		return "pfor"
	case CodecPFORDelta:
		return "pfor-delta"
	case CodecRLE:
		return "rle"
	case CodecPlainF64:
		return "plain-f64"
	case CodecPlainStr:
		return "plain-str"
	case CodecDict:
		return "pdict"
	case CodecBoolPack:
		return "boolpack"
	default:
		return fmt.Sprintf("codec(%d)", uint8(c))
	}
}

func frameHeader(dst []byte, c Codec, n int) []byte {
	dst = append(dst, byte(c))
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(n))
	return append(dst, cnt[:]...)
}

// ReadHeader returns the codec, row count and payload of a framed chunk.
func ReadHeader(data []byte) (Codec, int, []byte, error) {
	if len(data) < 5 {
		return 0, 0, nil, fmt.Errorf("compress: chunk too short (%d bytes)", len(data))
	}
	c := Codec(data[0])
	n := int(binary.LittleEndian.Uint32(data[1:5]))
	return c, n, data[5:], nil
}

// CompressI64 encodes vals with the requested codec (CodecPlainI64,
// CodecPFOR, CodecPFORDelta or CodecRLE).
func CompressI64(vals []int64, codec Codec) ([]byte, error) {
	dst := frameHeader(nil, codec, len(vals))
	if len(vals) == 0 {
		return dst, nil
	}
	switch codec {
	case CodecPlainI64:
		for _, v := range vals {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(v))
			dst = append(dst, b[:]...)
		}
	case CodecPFOR:
		dst = encodePFOR(dst, vals)
	case CodecPFORDelta:
		dst = encodePFORDelta(dst, vals)
	case CodecRLE:
		dst = encodeRLE(dst, vals)
	default:
		return nil, fmt.Errorf("compress: codec %v cannot encode int64", codec)
	}
	return dst, nil
}

// DecompressI64 decodes a framed int64 chunk into dst (grown as needed)
// and returns the decoded slice.
func DecompressI64(dst []int64, data []byte) ([]int64, error) {
	codec, n, payload, err := ReadHeader(data)
	if err != nil {
		return nil, err
	}
	if cap(dst) < n {
		dst = make([]int64, n)
	}
	dst = dst[:n]
	if n == 0 {
		return dst, nil
	}
	switch codec {
	case CodecPlainI64:
		if len(payload) < 8*n {
			return nil, fmt.Errorf("compress: truncated plain-i64 chunk")
		}
		for i := 0; i < n; i++ {
			dst[i] = int64(binary.LittleEndian.Uint64(payload[8*i:]))
		}
	case CodecPFOR:
		err = decodePFOR(dst, payload, n)
	case CodecPFORDelta:
		err = decodePFORDelta(dst, payload, n)
	case CodecRLE:
		err = decodeRLE(dst, payload, n)
	default:
		return nil, fmt.Errorf("compress: codec %v is not an int64 codec", codec)
	}
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// CompressF64 encodes a float64 chunk (plain bit patterns).
func CompressF64(vals []float64) ([]byte, error) {
	dst := frameHeader(nil, CodecPlainF64, len(vals))
	for _, v := range vals {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		dst = append(dst, b[:]...)
	}
	return dst, nil
}

// DecompressF64 decodes a framed float64 chunk.
func DecompressF64(dst []float64, data []byte) ([]float64, error) {
	codec, n, payload, err := ReadHeader(data)
	if err != nil {
		return nil, err
	}
	if codec != CodecPlainF64 {
		return nil, fmt.Errorf("compress: codec %v is not a float64 codec", codec)
	}
	if len(payload) < 8*n {
		return nil, fmt.Errorf("compress: truncated plain-f64 chunk")
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return dst, nil
}

// CompressStr encodes vals with CodecPlainStr or CodecDict. A CodecDict
// request silently falls back to plain when cardinality is too high;
// the frame records what was actually used.
func CompressStr(vals []string, codec Codec) ([]byte, error) {
	switch codec {
	case CodecDict:
		dst := frameHeader(nil, CodecDict, len(vals))
		if len(vals) == 0 {
			return dst, nil
		}
		if out := encodeDict(dst, vals); out != nil {
			return out, nil
		}
		return CompressStr(vals, CodecPlainStr)
	case CodecPlainStr:
		dst := frameHeader(nil, CodecPlainStr, len(vals))
		for _, s := range vals {
			dst = appendUvarint(dst, uint64(len(s)))
			dst = append(dst, s...)
		}
		return dst, nil
	default:
		return nil, fmt.Errorf("compress: codec %v cannot encode strings", codec)
	}
}

// DecompressStr decodes a framed string chunk.
func DecompressStr(dst []string, data []byte) ([]string, error) {
	codec, n, payload, err := ReadHeader(data)
	if err != nil {
		return nil, err
	}
	if cap(dst) < n {
		dst = make([]string, n)
	}
	dst = dst[:n]
	if n == 0 {
		return dst, nil
	}
	switch codec {
	case CodecPlainStr:
		for i := 0; i < n; i++ {
			l, k := binary.Uvarint(payload)
			if k <= 0 || uint64(len(payload)-k) < l {
				return nil, fmt.Errorf("compress: truncated plain-str chunk")
			}
			payload = payload[k:]
			dst[i] = string(payload[:l])
			payload = payload[l:]
		}
	case CodecDict:
		if err := decodeDict(dst, payload, n); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("compress: codec %v is not a string codec", codec)
	}
	return dst, nil
}

// CompressBool encodes a bool chunk as a bitmap.
func CompressBool(vals []bool) ([]byte, error) {
	dst := frameHeader(nil, CodecBoolPack, len(vals))
	var acc byte
	var nbits uint
	for _, v := range vals {
		if v {
			acc |= 1 << nbits
		}
		nbits++
		if nbits == 8 {
			dst = append(dst, acc)
			acc, nbits = 0, 0
		}
	}
	if nbits > 0 {
		dst = append(dst, acc)
	}
	return dst, nil
}

// DecompressBool decodes a framed bool chunk.
func DecompressBool(dst []bool, data []byte) ([]bool, error) {
	codec, n, payload, err := ReadHeader(data)
	if err != nil {
		return nil, err
	}
	if codec != CodecBoolPack {
		return nil, fmt.Errorf("compress: codec %v is not a bool codec", codec)
	}
	if len(payload) < (n+7)/8 {
		return nil, fmt.Errorf("compress: truncated bool chunk")
	}
	if cap(dst) < n {
		dst = make([]bool, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		dst[i] = payload[i/8]&(1<<(uint(i)%8)) != 0
	}
	return dst, nil
}

// ChooseI64Codec analyzes an integer column chunk and returns the codec
// with the smallest estimated encoding, mirroring the per-chunk codec
// selection of the Vectorwise storage layer.
func ChooseI64Codec(vals []int64) Codec {
	if len(vals) == 0 {
		return CodecPlainI64
	}
	best, bestSize := CodecPlainI64, 8*len(vals)
	if s := estimatePFORSize(vals); s < bestSize {
		best, bestSize = CodecPFOR, s
	}
	if s := estimatePFORDeltaSize(vals); s < bestSize {
		best, bestSize = CodecPFORDelta, s
	}
	// RLE only pays when runs are long; require 4× fewer runs than rows.
	if runs := countRuns(vals); runs*4 < len(vals) {
		if s := estimateRLESize(vals); s < bestSize {
			best, bestSize = CodecRLE, s
		}
	}
	_ = bestSize
	return best
}

// ChooseStrCodec analyzes a string column chunk.
func ChooseStrCodec(vals []string) Codec {
	if len(vals) == 0 {
		return CodecPlainStr
	}
	plain := 0
	for _, s := range vals {
		plain += len(s) + 1
	}
	if d := estimateDictSize(vals); d >= 0 && d < plain {
		return CodecDict
	}
	return CodecPlainStr
}
