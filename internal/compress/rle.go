package compress

import (
	"encoding/binary"
	"fmt"
)

// RLE codes runs of identical integers as (zigzag value, run length)
// varint pairs. Low-cardinality clustered columns (flags, statuses laid
// down in order) collapse dramatically.

// encodeRLE appends the RLE payload for vals.
func encodeRLE(dst []byte, vals []int64) []byte {
	i := 0
	for i < len(vals) {
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		dst = appendUvarint(dst, zigzag(vals[i]))
		dst = appendUvarint(dst, uint64(j-i))
		i = j
	}
	return dst
}

// decodeRLE decodes an RLE payload of n values into dst.
func decodeRLE(dst []int64, src []byte, n int) error {
	i := 0
	for i < n {
		zv, k := binary.Uvarint(src)
		if k <= 0 {
			return fmt.Errorf("compress: truncated RLE value")
		}
		src = src[k:]
		run, k2 := binary.Uvarint(src)
		if k2 <= 0 {
			return fmt.Errorf("compress: truncated RLE run")
		}
		src = src[k2:]
		v := unzigzag(zv)
		if i+int(run) > n {
			return fmt.Errorf("compress: RLE run overflows chunk")
		}
		for r := uint64(0); r < run; r++ {
			dst[i] = v
			i++
		}
	}
	return nil
}

// estimateRLESize approximates the encoded size of vals under RLE.
func estimateRLESize(vals []int64) int {
	runs := 0
	for i := 0; i < len(vals); {
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		runs++
		i = j
	}
	return runs * 6 // ~6 bytes per (value, run) pair on average
}

// countRuns reports the number of runs (exported for tests/stats).
func countRuns(vals []int64) int {
	if len(vals) == 0 {
		return 0
	}
	runs := 1
	for i := 1; i < len(vals); i++ {
		if vals[i] != vals[i-1] {
			runs++
		}
	}
	return runs
}
