package compress

import (
	"encoding/binary"
	"fmt"
)

// PDICT — dictionary coding for strings. The distinct values (in first-
// occurrence order) form the dictionary; the column becomes a vector of
// integer codes, themselves PFOR-coded. Low-cardinality string columns
// (flags, status words, nation names) shrink by an order of magnitude
// and decompress with one gather per vector.
//
// Payload layout:
//
//	ndict  uvarint
//	ndict × (len uvarint, bytes)
//	PFOR payload of the n codes

// encodeDict appends the PDICT payload for vals. Returns nil if the
// column has too many distinct values to be worth dictionary coding
// (caller falls back to plain).
func encodeDict(dst []byte, vals []string) []byte {
	dict, codes, ok := buildDict(vals)
	if !ok {
		return nil
	}
	dst = appendUvarint(dst, uint64(len(dict)))
	for _, s := range dict {
		dst = appendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	return encodePFOR(dst, codes)
}

// maxDictFraction bounds dictionary size: coding pays off only when the
// dictionary is much smaller than the column.
const maxDictFraction = 2

// buildDict returns the dictionary and code stream, or ok=false when
// cardinality is too high (more than 1/maxDictFraction of the rows).
func buildDict(vals []string) (dict []string, codes []int64, ok bool) {
	limit := len(vals)/maxDictFraction + 1
	idx := make(map[string]int64, 64)
	codes = make([]int64, len(vals))
	for i, s := range vals {
		c, found := idx[s]
		if !found {
			if len(dict) >= limit {
				return nil, nil, false
			}
			c = int64(len(dict))
			dict = append(dict, s)
			idx[s] = c
		}
		codes[i] = c
	}
	return dict, codes, true
}

// decodeDict decodes a PDICT payload of n values into dst.
func decodeDict(dst []string, src []byte, n int) error {
	nd, k := binary.Uvarint(src)
	if k <= 0 {
		return fmt.Errorf("compress: truncated dict size")
	}
	src = src[k:]
	dict := make([]string, nd)
	for i := range dict {
		l, k1 := binary.Uvarint(src)
		if k1 <= 0 {
			return fmt.Errorf("compress: truncated dict entry")
		}
		src = src[k1:]
		if uint64(len(src)) < l {
			return fmt.Errorf("compress: truncated dict bytes")
		}
		dict[i] = string(src[:l])
		src = src[l:]
	}
	codes := make([]int64, n)
	if err := decodePFOR(codes, src, n); err != nil {
		return err
	}
	for i, c := range codes {
		if c < 0 || c >= int64(nd) {
			return fmt.Errorf("compress: dict code %d out of range", c)
		}
		dst[i] = dict[c]
	}
	return nil
}

// estimateDictSize approximates the PDICT size, or -1 when dictionary
// coding is not applicable.
func estimateDictSize(vals []string) int {
	dict, codes, ok := buildDict(vals)
	if !ok {
		return -1
	}
	size := 4
	for _, s := range dict {
		size += len(s) + 2
	}
	return size + estimatePFORSize(codes)
}
