// Package rewriter is the rule-based plan rewriting layer of §I-B. In
// the product it is implemented with the Tom pattern-matching tool; here
// the rules are hand-written Go pattern matches over the algebra (see
// DESIGN.md substitution table). Two rule families are implemented:
//
//   - Simplification: flatten boolean nests, eliminate double negation,
//     fold literal-only comparisons — the normalizations that make the
//     cross-compiler's fast-path patterns fire.
//   - Parallelization: the Volcano-style multi-core rewrite. A pipeline
//     of Scan[→Select][→Project][→Aggregate] is cloned per partition of
//     the table's row groups, partial results flow through an exchange
//     union, and a final aggregate (or nothing, for pipe-only plans)
//     recombines them. AVG first decomposes into SUM/COUNT so partials
//     recombine exactly.
package rewriter

import (
	"vectorwise/internal/algebra"
	"vectorwise/internal/catalog"
	"vectorwise/internal/core"
	"vectorwise/internal/vtypes"
)

// Simplify normalizes boolean structure bottom-up.
func Simplify(s algebra.Scalar) algebra.Scalar {
	switch t := s.(type) {
	case *algebra.And:
		var flat []algebra.Scalar
		for _, p := range t.Preds {
			p = Simplify(p)
			if inner, ok := p.(*algebra.And); ok {
				flat = append(flat, inner.Preds...)
				continue
			}
			if lit, ok := p.(*algebra.Lit); ok && lit.Val.Kind == vtypes.KindBool && lit.Val.B {
				continue // AND true
			}
			flat = append(flat, p)
		}
		if len(flat) == 1 {
			return flat[0]
		}
		if len(flat) == 0 {
			return &algebra.Lit{Val: vtypes.BoolValue(true)}
		}
		return &algebra.And{Preds: flat}
	case *algebra.Or:
		var flat []algebra.Scalar
		for _, p := range t.Preds {
			p = Simplify(p)
			if inner, ok := p.(*algebra.Or); ok {
				flat = append(flat, inner.Preds...)
				continue
			}
			if lit, ok := p.(*algebra.Lit); ok && lit.Val.Kind == vtypes.KindBool && !lit.Val.B {
				continue // OR false
			}
			flat = append(flat, p)
		}
		if len(flat) == 1 {
			return flat[0]
		}
		if len(flat) == 0 {
			return &algebra.Lit{Val: vtypes.BoolValue(false)}
		}
		return &algebra.Or{Preds: flat}
	case *algebra.Not:
		in := Simplify(t.In)
		if inner, ok := in.(*algebra.Not); ok {
			return inner.In
		}
		if cmp, ok := in.(*algebra.Cmp); ok {
			return &algebra.Cmp{Op: negateCmp(cmp.Op), L: cmp.L, R: cmp.R}
		}
		if like, ok := in.(*algebra.Like); ok {
			return &algebra.Like{In: like.In, Pattern: like.Pattern, Negate: !like.Negate}
		}
		return &algebra.Not{In: in}
	case *algebra.Cmp:
		if l, ok := t.L.(*algebra.Lit); ok {
			if r, ok2 := t.R.(*algebra.Lit); ok2 {
				cmp := l.Val.Compare(r.Val)
				var b bool
				switch t.Op {
				case algebra.CmpEq:
					b = cmp == 0
				case algebra.CmpNe:
					b = cmp != 0
				case algebra.CmpLt:
					b = cmp < 0
				case algebra.CmpLe:
					b = cmp <= 0
				case algebra.CmpGt:
					b = cmp > 0
				default:
					b = cmp >= 0
				}
				return &algebra.Lit{Val: vtypes.BoolValue(b)}
			}
		}
		return t
	default:
		return s
	}
}

func negateCmp(op algebra.CmpOp) algebra.CmpOp {
	switch op {
	case algebra.CmpEq:
		return algebra.CmpNe
	case algebra.CmpNe:
		return algebra.CmpEq
	case algebra.CmpLt:
		return algebra.CmpGe
	case algebra.CmpLe:
		return algebra.CmpGt
	case algebra.CmpGt:
		return algebra.CmpLe
	default:
		return algebra.CmpLt
	}
}

// SimplifyPlan applies Simplify to every predicate in a plan.
func SimplifyPlan(n algebra.Node) algebra.Node {
	switch t := n.(type) {
	case *algebra.SelectNode:
		return &algebra.SelectNode{Input: SimplifyPlan(t.Input), Pred: Simplify(t.Pred)}
	case *algebra.ProjectNode:
		return &algebra.ProjectNode{Input: SimplifyPlan(t.Input), Exprs: t.Exprs, Names: t.Names}
	case *algebra.AggNode:
		return &algebra.AggNode{Input: SimplifyPlan(t.Input), GroupBy: t.GroupBy, Aggs: t.Aggs, Names: t.Names, Partial: t.Partial}
	case *algebra.JoinNode:
		return &algebra.JoinNode{Left: SimplifyPlan(t.Left), Right: SimplifyPlan(t.Right),
			LeftKeys: t.LeftKeys, RightKeys: t.RightKeys, Type: t.Type}
	case *algebra.SortNode:
		return &algebra.SortNode{Input: SimplifyPlan(t.Input), Keys: t.Keys}
	case *algebra.LimitNode:
		return &algebra.LimitNode{Input: SimplifyPlan(t.Input), N: t.N}
	default:
		return n
	}
}

// DecomposeAvg rewrites every AVG in an AggNode into SUM and COUNT with
// a Project on top computing the quotient. This both lets partial
// aggregates recombine exactly under parallelization and mirrors how the
// product's rewriter decomposes non-distributive aggregates.
func DecomposeAvg(a *algebra.AggNode) algebra.Node {
	hasAvg := false
	for _, ag := range a.Aggs {
		if ag.Fn == algebra.AggAvg {
			hasAvg = true
		}
	}
	if !hasAvg {
		return a
	}
	var newAggs []algebra.AggExpr
	var newNames []string
	// Map original agg index → (sumIdx, cntIdx) or plain idx.
	type slot struct{ sum, cnt, plain int }
	slots := make([]slot, len(a.Aggs))
	ng := len(a.GroupBy)
	for i, ag := range a.Aggs {
		if ag.Fn == algebra.AggAvg {
			slots[i] = slot{sum: ng + len(newAggs), cnt: ng + len(newAggs) + 1, plain: -1}
			newAggs = append(newAggs,
				algebra.AggExpr{Fn: algebra.AggSum, Arg: &algebra.Cast{In: ag.Arg, To: vtypes.KindF64}},
				algebra.AggExpr{Fn: algebra.AggCountStar})
			newNames = append(newNames, a.Names[ng+i]+"_sum", a.Names[ng+i]+"_cnt")
			continue
		}
		slots[i] = slot{plain: ng + len(newAggs)}
		newAggs = append(newAggs, ag)
		newNames = append(newNames, a.Names[ng+i])
	}
	inner := &algebra.AggNode{
		Input:   a.Input,
		GroupBy: a.GroupBy,
		Aggs:    newAggs,
		Names:   append(append([]string{}, a.Names[:ng]...), newNames...),
	}
	innerSchema := inner.Schema()
	var exprs []algebra.Scalar
	var names []string
	for g := 0; g < ng; g++ {
		exprs = append(exprs, &algebra.ColRef{Idx: g, K: innerSchema.Col(g).Kind})
		names = append(names, a.Names[g])
	}
	for i := range a.Aggs {
		if slots[i].plain >= 0 {
			exprs = append(exprs, &algebra.ColRef{Idx: slots[i].plain, K: innerSchema.Col(slots[i].plain).Kind})
		} else {
			div, err := algebra.NewArith(algebra.OpDiv,
				&algebra.ColRef{Idx: slots[i].sum, K: vtypes.KindF64},
				&algebra.Cast{In: &algebra.ColRef{Idx: slots[i].cnt, K: vtypes.KindI64}, To: vtypes.KindF64})
			if err != nil {
				return a // should not happen; keep original on failure
			}
			exprs = append(exprs, div)
		}
		names = append(names, a.Names[ng+i])
	}
	return &algebra.ProjectNode{Input: inner, Exprs: exprs, Names: names}
}

// Parallelize rewrites a plan for multi-core execution with `workers`
// partitions. Only the canonical X100 pipeline shapes are parallelized
// (aggregation over a scan pipeline, or a pure scan pipeline); anything
// else returns unchanged — mirroring how the product's parallel rewriter
// grew rule by rule.
func Parallelize(n algebra.Node, cat *catalog.Catalog, workers int) algebra.Node {
	if workers <= 1 {
		return n
	}
	switch t := n.(type) {
	case *algebra.SortNode:
		return &algebra.SortNode{Input: Parallelize(t.Input, cat, workers), Keys: t.Keys}
	case *algebra.LimitNode:
		return &algebra.LimitNode{Input: Parallelize(t.Input, cat, workers), N: t.N}
	case *algebra.ProjectNode:
		// A projection above an aggregation (e.g. AVG decomposition)
		// parallelizes beneath it.
		if agg, ok := t.Input.(*algebra.AggNode); ok {
			inner := Parallelize(agg, cat, workers)
			if inner != agg {
				return &algebra.ProjectNode{Input: inner, Exprs: t.Exprs, Names: t.Names}
			}
		}
		return parallelizePipe(t, cat, workers)
	case *algebra.AggNode:
		if d := DecomposeAvg(t); d != t {
			return Parallelize(d, cat, workers)
		}
		return parallelizeAgg(t, cat, workers)
	case *algebra.SelectNode, *algebra.ScanNode:
		return parallelizePipe(n, cat, workers)
	default:
		return n
	}
}

// pipelineScan walks a Scan[→Select][→Project] chain, returning the
// scan and a rebuild function that re-roots the chain on a new scan.
func pipelineScan(n algebra.Node) (*algebra.ScanNode, func(algebra.Node) algebra.Node) {
	switch t := n.(type) {
	case *algebra.ScanNode:
		return t, func(s algebra.Node) algebra.Node { return s }
	case *algebra.SelectNode:
		scan, rebuild := pipelineScan(t.Input)
		if scan == nil {
			return nil, nil
		}
		return scan, func(s algebra.Node) algebra.Node {
			return &algebra.SelectNode{Input: rebuild(s), Pred: t.Pred}
		}
	case *algebra.ProjectNode:
		scan, rebuild := pipelineScan(t.Input)
		if scan == nil {
			return nil, nil
		}
		return scan, func(s algebra.Node) algebra.Node {
			return &algebra.ProjectNode{Input: rebuild(s), Exprs: t.Exprs, Names: t.Names}
		}
	default:
		return nil, nil
	}
}

// partitionScan clones a scan per row-group range.
func partitionScan(scan *algebra.ScanNode, cat *catalog.Catalog, workers int) []*algebra.ScanNode {
	tbl, _, err := cat.Resolve(scan.Table)
	if err != nil || tbl.Groups() < 2 || scan.PartHi > 0 {
		return nil
	}
	parts := core.PartitionGroups(tbl.Groups(), workers)
	if len(parts) < 2 {
		return nil
	}
	var out []*algebra.ScanNode
	for _, p := range parts {
		clone := *scan
		clone.PartLo, clone.PartHi = p[0], p[1]
		out = append(out, &clone)
	}
	return out
}

// parallelizePipe splits Scan[→Select][→Project] into a partitioned
// union.
func parallelizePipe(n algebra.Node, cat *catalog.Catalog, workers int) algebra.Node {
	scan, rebuild := pipelineScan(n)
	if scan == nil {
		return n
	}
	scans := partitionScan(scan, cat, workers)
	if scans == nil {
		return n
	}
	var inputs []algebra.Node
	for _, s := range scans {
		inputs = append(inputs, rebuild(s))
	}
	return &algebra.UnionAllNode{Inputs: inputs}
}

// parallelizeAgg produces partial aggregates per partition plus a final
// recombining aggregate (SUM→SUM, COUNT→SUM, MIN→MIN, MAX→MAX).
func parallelizeAgg(a *algebra.AggNode, cat *catalog.Catalog, workers int) algebra.Node {
	for _, ag := range a.Aggs {
		switch ag.Fn {
		case algebra.AggSum, algebra.AggCount, algebra.AggCountStar, algebra.AggMin, algebra.AggMax:
		default:
			return a // non-distributive aggregate left serial
		}
	}
	scan, rebuild := pipelineScan(a.Input)
	if scan == nil {
		return a
	}
	scans := partitionScan(scan, cat, workers)
	if scans == nil {
		return a
	}
	var inputs []algebra.Node
	for _, s := range scans {
		inputs = append(inputs, &algebra.AggNode{
			Input:   rebuild(s),
			GroupBy: a.GroupBy,
			Aggs:    a.Aggs,
			Names:   a.Names,
			Partial: true,
		})
	}
	union := &algebra.UnionAllNode{Inputs: inputs}
	// Final aggregate regroups on the partial group columns.
	partialSchema := inputs[0].Schema()
	ng := len(a.GroupBy)
	var finalGroups []algebra.Scalar
	for g := 0; g < ng; g++ {
		finalGroups = append(finalGroups, &algebra.ColRef{Idx: g, K: partialSchema.Col(g).Kind})
	}
	var finalAggs []algebra.AggExpr
	for i, ag := range a.Aggs {
		argRef := &algebra.ColRef{Idx: ng + i, K: partialSchema.Col(ng + i).Kind}
		switch ag.Fn {
		case algebra.AggSum:
			finalAggs = append(finalAggs, algebra.AggExpr{Fn: algebra.AggSum, Arg: argRef})
		case algebra.AggCount, algebra.AggCountStar:
			finalAggs = append(finalAggs, algebra.AggExpr{Fn: algebra.AggSum, Arg: argRef})
		case algebra.AggMin:
			finalAggs = append(finalAggs, algebra.AggExpr{Fn: algebra.AggMin, Arg: argRef})
		case algebra.AggMax:
			finalAggs = append(finalAggs, algebra.AggExpr{Fn: algebra.AggMax, Arg: argRef})
		}
	}
	return &algebra.AggNode{Input: union, GroupBy: finalGroups, Aggs: finalAggs, Names: a.Names}
}
