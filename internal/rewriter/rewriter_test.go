package rewriter

import (
	"strings"
	"testing"

	"vectorwise/internal/algebra"
	"vectorwise/internal/catalog"
	"vectorwise/internal/core"
	"vectorwise/internal/storage"
	"vectorwise/internal/tupleengine"
	"vectorwise/internal/vtypes"
	"vectorwise/internal/xcompile"
)

func colI(i int) algebra.Scalar { return &algebra.ColRef{Idx: i, K: vtypes.KindI64} }
func litI(v int64) algebra.Scalar {
	return &algebra.Lit{Val: vtypes.I64Value(v)}
}

func TestSimplifyFlattensAndFolds(t *testing.T) {
	nested := &algebra.And{Preds: []algebra.Scalar{
		&algebra.And{Preds: []algebra.Scalar{
			&algebra.Cmp{Op: algebra.CmpLt, L: colI(0), R: litI(5)},
			&algebra.Lit{Val: vtypes.BoolValue(true)},
		}},
		&algebra.Cmp{Op: algebra.CmpGt, L: colI(1), R: litI(2)},
	}}
	out := Simplify(nested)
	and, ok := out.(*algebra.And)
	if !ok || len(and.Preds) != 2 {
		t.Fatalf("flatten failed: %v", out)
	}
	// Single conjunct unwraps.
	single := Simplify(&algebra.And{Preds: []algebra.Scalar{colCmp()}})
	if _, ok := single.(*algebra.Cmp); !ok {
		t.Fatalf("single AND must unwrap: %T", single)
	}
	// Double negation cancels.
	nn := Simplify(&algebra.Not{In: &algebra.Not{In: colCmp()}})
	if _, ok := nn.(*algebra.Cmp); !ok {
		t.Fatalf("double NOT must cancel: %T", nn)
	}
	// NOT of comparison inverts the operator.
	inv := Simplify(&algebra.Not{In: &algebra.Cmp{Op: algebra.CmpLt, L: colI(0), R: litI(1)}})
	if c, ok := inv.(*algebra.Cmp); !ok || c.Op != algebra.CmpGe {
		t.Fatalf("NOT < must become >=: %v", inv)
	}
	// Literal-literal comparison folds.
	folded := Simplify(&algebra.Cmp{Op: algebra.CmpLt, L: litI(1), R: litI(2)})
	if l, ok := folded.(*algebra.Lit); !ok || !l.Val.B {
		t.Fatalf("1<2 must fold to true: %v", folded)
	}
	// NOT LIKE folds into the Like node.
	nl := Simplify(&algebra.Not{In: &algebra.Like{In: colI(0), Pattern: "x%"}})
	if lk, ok := nl.(*algebra.Like); !ok || !lk.Negate {
		t.Fatalf("NOT LIKE must fold: %v", nl)
	}
}

func colCmp() algebra.Scalar {
	return &algebra.Cmp{Op: algebra.CmpEq, L: colI(0), R: litI(1)}
}

func buildCat(t *testing.T, rows, groupRows int) *catalog.Catalog {
	t.Helper()
	schema := vtypes.NewSchema(
		vtypes.Column{Name: "g", Kind: vtypes.KindI64},
		vtypes.Column{Name: "v", Kind: vtypes.KindF64},
	)
	b := storage.NewBuilder("t", schema, groupRows)
	for i := 0; i < rows; i++ {
		if err := b.AppendRow(vtypes.Row{vtypes.I64Value(int64(i % 13)), vtypes.F64Value(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	tbl, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	cat.Put(tbl)
	return cat
}

func aggPlan(fn algebra.AggFn) *algebra.AggNode {
	return &algebra.AggNode{
		Input: &algebra.ScanNode{Table: "t", Cols: []int{0, 1},
			Out: vtypes.NewSchema(
				vtypes.Column{Name: "g", Kind: vtypes.KindI64},
				vtypes.Column{Name: "v", Kind: vtypes.KindF64})},
		GroupBy: []algebra.Scalar{colI(0)},
		Aggs:    []algebra.AggExpr{{Fn: fn, Arg: &algebra.ColRef{Idx: 1, K: vtypes.KindF64}}},
		Names:   []string{"g", "a"},
	}
}

func TestParallelizeAggMatchesSerial(t *testing.T) {
	cat := buildCat(t, 5000, 512)
	for _, fn := range []algebra.AggFn{algebra.AggSum, algebra.AggMin, algebra.AggMax, algebra.AggAvg} {
		serialRows, err := tupleengine.Run(aggPlan(fn), cat)
		if err != nil {
			t.Fatal(err)
		}
		par := Parallelize(aggPlan(fn), cat, 4)
		if _, isAgg := par.(*algebra.AggNode); fn != algebra.AggAvg && !isAgg {
			t.Fatalf("fn %v: parallel plan should be final-agg-rooted, got %T", fn, par)
		}
		op, err := xcompile.Compile(par, cat, xcompile.Options{})
		if err != nil {
			t.Fatal(err)
		}
		parRows, err := core.Collect(op)
		if err != nil {
			t.Fatal(err)
		}
		if len(parRows) != len(serialRows) {
			t.Fatalf("fn %v: %d parallel rows vs %d serial", fn, len(parRows), len(serialRows))
		}
		// Compare as maps (exchange reorders groups).
		want := map[int64]float64{}
		for _, r := range serialRows {
			want[r[0].I64] = r[1].AsFloat()
		}
		for _, r := range parRows {
			w := want[r[0].I64]
			g := r[1].AsFloat()
			if diff := g - w; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("fn %v group %d: parallel %v vs serial %v", fn, r[0].I64, g, w)
			}
		}
	}
}

func TestParallelizeInjectsExchange(t *testing.T) {
	cat := buildCat(t, 5000, 512)
	par := Parallelize(aggPlan(algebra.AggSum), cat, 4)
	plan := algebra.Explain(par)
	if !strings.Contains(plan, "XchgUnion") {
		t.Fatalf("no exchange in plan:\n%s", plan)
	}
	if !strings.Contains(plan, "part=") {
		t.Fatalf("no partitioned scans in plan:\n%s", plan)
	}
}

func TestParallelizeLeavesSmallTablesAlone(t *testing.T) {
	cat := buildCat(t, 100, 512) // single row group
	par := Parallelize(aggPlan(algebra.AggSum), cat, 4)
	if strings.Contains(algebra.Explain(par), "XchgUnion") {
		t.Fatal("single-group table must not parallelize")
	}
	// workers <= 1 is a no-op.
	same := Parallelize(aggPlan(algebra.AggSum), cat, 1)
	if strings.Contains(algebra.Explain(same), "XchgUnion") {
		t.Fatal("workers=1 must not parallelize")
	}
}

func TestDecomposeAvg(t *testing.T) {
	plan := aggPlan(algebra.AggAvg)
	out := DecomposeAvg(plan)
	proj, ok := out.(*algebra.ProjectNode)
	if !ok {
		t.Fatalf("AVG must decompose under a Project, got %T", out)
	}
	inner, ok := proj.Input.(*algebra.AggNode)
	if !ok || len(inner.Aggs) != 2 {
		t.Fatalf("decomposed agg wrong: %#v", proj.Input)
	}
	if inner.Aggs[0].Fn != algebra.AggSum || inner.Aggs[1].Fn != algebra.AggCountStar {
		t.Fatal("AVG must become SUM + COUNT")
	}
	// Non-AVG plans pass through unchanged.
	same := DecomposeAvg(aggPlan(algebra.AggSum))
	if _, ok := same.(*algebra.AggNode); !ok {
		t.Fatal("non-AVG plan must pass through")
	}
}
