package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	vectorwise "vectorwise"
)

// TestConcurrentMixedWorkload hammers one server with 40 concurrent
// HTTP clients issuing mixed SELECT/INSERT/UPDATE (run under -race in
// CI). It checks three things: every statement succeeds, the admission
// controller observably caps in-flight statements at MaxConcurrent,
// and the final table contents account for every acknowledged write.
func TestConcurrentMixedWorkload(t *testing.T) {
	const (
		clients  = 40
		opsEach  = 15
		seedRows = 4096 // big enough that concurrent SELECTs overlap
		cap      = 4
	)

	db := vectorwise.OpenMemory()
	if _, err := db.Exec(`CREATE TABLE acct (id BIGINT, bal DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	ids := make([]int64, seedRows)
	bals := make([]float64, seedRows)
	for i := range ids {
		ids[i] = int64(i)
		bals[i] = 100.0
	}
	if _, err := db.LoadBatch("acct", []any{ids, bals}, nil); err != nil {
		t.Fatal(err)
	}

	srv := New(db, Config{
		MaxConcurrent: cap,
		MaxQueue:      clients * opsEach, // never shed in this test
		QueryTimeout:  time.Minute,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	query := func(c *http.Client, req QueryRequest) (int, QueryResponse, ErrorResponse, error) {
		body, _ := json.Marshal(req)
		resp, err := c.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, QueryResponse{}, ErrorResponse{}, err
		}
		defer resp.Body.Close()
		var qr QueryResponse
		var er ErrorResponse
		if resp.StatusCode == http.StatusOK {
			err = json.NewDecoder(resp.Body).Decode(&qr)
		} else {
			err = json.NewDecoder(resp.Body).Decode(&er)
		}
		return resp.StatusCode, qr, er, err
	}

	var inserted atomic.Int64
	var failures atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 2 * time.Minute}

			// Each client works inside its own session.
			resp, err := client.Post(ts.URL+"/v1/session", "application/json", nil)
			if err != nil {
				t.Errorf("client %d: session: %v", c, err)
				failures.Add(1)
				return
			}
			var sess Session
			if err := json.NewDecoder(resp.Body).Decode(&sess); err != nil {
				t.Errorf("client %d: session decode: %v", c, err)
				resp.Body.Close()
				failures.Add(1)
				return
			}
			resp.Body.Close()

			for i := 0; i < opsEach; i++ {
				var req QueryRequest
				req.Session = sess.ID
				switch i % 3 {
				case 0:
					req.SQL = fmt.Sprintf(
						`SELECT COUNT(*) n, SUM(bal) total FROM acct WHERE id < %d`, seedRows)
				case 1:
					// Distinct ids per (client, iteration): no collisions.
					req.SQL = fmt.Sprintf(
						`INSERT INTO acct VALUES (%d, 1.0)`, 1000+c*opsEach+i)
				case 2:
					req.SQL = fmt.Sprintf(
						`UPDATE acct SET bal = bal + 1.0 WHERE id = %d`, (c*7+i)%seedRows)
				}
				code, qr, er, err := query(client, req)
				if err != nil || code != http.StatusOK {
					t.Errorf("client %d op %d (%s): code=%d err=%v apierr=%+v",
						c, i, req.SQL, code, err, er.Error)
					failures.Add(1)
					continue
				}
				switch i % 3 {
				case 0:
					if len(qr.Rows) != 1 {
						t.Errorf("client %d op %d: rows %v", c, i, qr.Rows)
						failures.Add(1)
					}
				case 1:
					inserted.Add(1)
					fallthrough
				case 2:
					if qr.RowsAffected == nil || *qr.RowsAffected != 1 {
						t.Errorf("client %d op %d: rows_affected %v", c, i, qr.RowsAffected)
						failures.Add(1)
					}
				}
			}
		}(c)
	}
	wg.Wait()

	if n := failures.Load(); n > 0 {
		t.Fatalf("%d statement failures", n)
	}

	// Every acknowledged INSERT must be visible.
	res, err := db.Query(`SELECT COUNT(*) n FROM acct`)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(seedRows) + inserted.Load()
	if got := res.Rows[0][0].I64; got != want {
		t.Fatalf("row count %d, want %d (seed %d + inserted %d)",
			got, want, seedRows, inserted.Load())
	}

	// The cap must have been enforced — and actually exercised: with 40
	// clients pushing through 4 slots, the pool saturates.
	st := srv.adm.snapshot()
	if st.PeakInFlight > cap {
		t.Fatalf("admission cap breached: peak %d > cap %d", st.PeakInFlight, cap)
	}
	if st.PeakInFlight < 2 {
		t.Fatalf("no concurrency observed: peak %d", st.PeakInFlight)
	}
	if st.Rejected != 0 {
		t.Fatalf("unexpected rejections: %+v", st)
	}
	if wantAdm := int64(clients * opsEach); st.Admitted != wantAdm {
		t.Fatalf("admitted %d, want %d", st.Admitted, wantAdm)
	}
	if st.InFlight != 0 || st.Waiting != 0 {
		t.Fatalf("not quiescent after drain: %+v", st)
	}
}

// TestConcurrentReadersDuringWrites drives pure SELECT traffic from
// many goroutines while a writer thread mutates the same table through
// the engine API — the reader/writer discipline on DB must keep every
// snapshot consistent (the -race build verifies no data races under
// the hood).
func TestConcurrentReadersDuringWrites(t *testing.T) {
	db := vectorwise.OpenMemory()
	if _, err := db.Exec(`CREATE TABLE ledger (id BIGINT, amt DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO ledger VALUES (1, 10), (2, 20), (3, 30)`); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var writerErr error
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Balanced mutations: every UPDATE pair keeps SUM invariant.
			if _, err := db.Exec(`UPDATE ledger SET amt = amt + 5 WHERE id = 1`); err != nil {
				writerErr = err
				return
			}
			if _, err := db.Exec(`UPDATE ledger SET amt = amt - 5 WHERE id = 1`); err != nil {
				writerErr = err
				return
			}
		}
	}()

	var rwg sync.WaitGroup
	errs := make(chan error, 32)
	for r := 0; r < 32; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for i := 0; i < 20; i++ {
				res, err := db.Query(`SELECT SUM(amt) s, COUNT(*) n FROM ledger`)
				if err != nil {
					errs <- err
					return
				}
				// Each snapshot sees either pre- or post-update amounts,
				// never a torn mix: id=1 moves in ±5 steps, so SUM is 60
				// or 65.
				s := res.Rows[0][0].F64
				if s != 60 && s != 65 {
					errs <- fmt.Errorf("torn snapshot: SUM=%v", s)
					return
				}
			}
		}()
	}
	rwg.Wait()
	close(stop)
	wwg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if writerErr != nil {
		t.Fatalf("writer: %v", writerErr)
	}
}
