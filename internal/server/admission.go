package server

import (
	"context"
	"errors"
	"sync"
)

// ErrOverloaded is returned by acquire when the concurrency cap is
// reached and the waiting room is full; the HTTP layer maps it to 429.
var ErrOverloaded = errors.New("server: overloaded, try again later")

// AdmissionStats is a snapshot of the admission controller's counters,
// exposed on /v1/stats so the cap is observable from outside.
type AdmissionStats struct {
	// MaxConcurrent is the configured in-flight cap.
	MaxConcurrent int `json:"max_concurrent"`
	// InFlight is the number of queries currently holding a slot.
	InFlight int `json:"in_flight"`
	// PeakInFlight is the high-water mark of InFlight since start.
	PeakInFlight int `json:"peak_in_flight"`
	// Waiting is the number of requests queued for a slot right now.
	Waiting int `json:"waiting"`
	// Admitted counts requests that obtained a slot.
	Admitted int64 `json:"admitted"`
	// Rejected counts requests turned away with ErrOverloaded.
	Rejected int64 `json:"rejected"`
	// Abandoned counts requests whose context expired while waiting.
	Abandoned int64 `json:"abandoned"`
}

// admission caps the number of statements executing simultaneously.
// Requests past the cap wait for a slot (bounded by maxQueue waiters);
// anything beyond that is rejected immediately so overload sheds load
// instead of stacking goroutines.
type admission struct {
	slots    chan struct{}
	maxQueue int

	mu    sync.Mutex
	stats AdmissionStats
}

func newAdmission(maxConcurrent, maxQueue int) *admission {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		slots:    make(chan struct{}, maxConcurrent),
		maxQueue: maxQueue,
		stats:    AdmissionStats{MaxConcurrent: maxConcurrent},
	}
}

// acquire obtains an execution slot, waiting until ctx expires. It
// returns ErrOverloaded when the waiting room is full and ctx.Err()
// when the caller's deadline passes first.
func (a *admission) acquire(ctx context.Context) error {
	// Fast path: free slot.
	select {
	case a.slots <- struct{}{}:
		a.admitted()
		return nil
	default:
	}

	a.mu.Lock()
	if a.stats.Waiting >= a.maxQueue {
		a.stats.Rejected++
		a.mu.Unlock()
		return ErrOverloaded
	}
	a.stats.Waiting++
	a.mu.Unlock()

	select {
	case a.slots <- struct{}{}:
		a.mu.Lock()
		a.stats.Waiting--
		a.mu.Unlock()
		a.admitted()
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		a.stats.Waiting--
		a.stats.Abandoned++
		a.mu.Unlock()
		return ctx.Err()
	}
}

// admitted records a successful slot grab.
func (a *admission) admitted() {
	a.mu.Lock()
	a.stats.Admitted++
	a.stats.InFlight++
	if a.stats.InFlight > a.stats.PeakInFlight {
		a.stats.PeakInFlight = a.stats.InFlight
	}
	a.mu.Unlock()
}

// release returns a slot. It must be called exactly once per successful
// acquire, after the statement finishes executing (even if the HTTP
// response was already written on timeout).
func (a *admission) release() {
	a.mu.Lock()
	a.stats.InFlight--
	a.mu.Unlock()
	<-a.slots
}

// snapshot returns a copy of the counters.
func (a *admission) snapshot() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}
