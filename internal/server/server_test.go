package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	vectorwise "vectorwise"
)

// newTestServer builds a Server over an in-memory DB with a seeded
// table, mounted on an httptest server.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	db := vectorwise.OpenMemory()
	if _, err := db.Exec(`CREATE TABLE kv (k BIGINT, v VARCHAR)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO kv VALUES (1,'a'), (2,'b'), (3,'c')`); err != nil {
		t.Fatal(err)
	}
	s := New(db, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// postQuery issues a /v1/query request and decodes the response into out.
func postQuery(t *testing.T, ts *httptest.Server, req QueryRequest, out any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode
}

func TestQueryEndpointSelect(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var got QueryResponse
	code := postQuery(t, ts, QueryRequest{SQL: `SELECT k, v FROM kv ORDER BY k`}, &got)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(got.Columns) != 2 || got.Columns[0] != "k" {
		t.Fatalf("columns: %v", got.Columns)
	}
	if len(got.Rows) != 3 {
		t.Fatalf("rows: %v", got.Rows)
	}
	// JSON numbers decode as float64; strings stay strings.
	if got.Rows[0][0].(float64) != 1 || got.Rows[0][1].(string) != "a" {
		t.Fatalf("row 0: %v", got.Rows[0])
	}
	if got.RowsAffected != nil {
		t.Fatalf("SELECT should not set rows_affected")
	}
}

func TestQueryEndpointDML(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var got QueryResponse
	code := postQuery(t, ts, QueryRequest{SQL: `UPDATE kv SET v = 'z' WHERE k > 1`}, &got)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if got.RowsAffected == nil || *got.RowsAffected != 2 {
		t.Fatalf("rows_affected: %v", got.RowsAffected)
	}
	var sel QueryResponse
	postQuery(t, ts, QueryRequest{SQL: `SELECT v FROM kv WHERE k = 3`}, &sel)
	if len(sel.Rows) != 1 || sel.Rows[0][0].(string) != "z" {
		t.Fatalf("update not visible: %v", sel.Rows)
	}
}

func TestQueryEndpointNullAndDate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code := postQuery(t, ts, QueryRequest{
		SQL: `CREATE TABLE ev (d DATE, note VARCHAR NULL)`}, nil); code != http.StatusOK {
		t.Fatalf("create: %d", code)
	}
	if code := postQuery(t, ts, QueryRequest{
		SQL: `INSERT INTO ev VALUES (DATE '2011-04-05', NULL)`}, nil); code != http.StatusOK {
		t.Fatalf("insert: %d", code)
	}
	var got QueryResponse
	postQuery(t, ts, QueryRequest{SQL: `SELECT d, note FROM ev`}, &got)
	if len(got.Rows) != 1 || got.Rows[0][0].(string) != "2011-04-05" || got.Rows[0][1] != nil {
		t.Fatalf("rows: %v", got.Rows)
	}
}

func TestStructuredErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name     string
		body     string
		wantCode int
		wantErr  string
	}{
		{"syntax", `{"sql": "SELEC nope"}`, http.StatusBadRequest, "bad_request"},
		{"missing sql", `{}`, http.StatusBadRequest, "bad_request"},
		{"bad json", `{"sql": `, http.StatusBadRequest, "bad_request"},
		{"unknown session", `{"sql": "SELECT k FROM kv", "session": "nope"}`, http.StatusNotFound, "not_found"},
		{"unknown table", `{"sql": "SELECT x FROM missing"}`, http.StatusNotFound, "not_found"},
		{"explicit txn", `{"sql": "BEGIN"}`, http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader([]byte(tc.body)))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.wantCode)
			}
			var e ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatal(err)
			}
			if e.Error.Code != tc.wantErr {
				t.Fatalf("code %q, want %q", e.Error.Code, tc.wantErr)
			}
			if e.Error.Message == "" {
				t.Fatal("empty error message")
			}
		})
	}
}

// TestParseErrorPositionWire pins the wire shape of a parse error: the
// /v1/query JSON error body carries a "position" object with exactly
// the field names clients key on (offset/line/col/near), on both the
// buffered and the streaming entry points. Decoding into a generic map
// keeps the test honest about the raw JSON keys.
func TestParseErrorPositionWire(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/v1/query", "/v1/query?stream=1"} {
		t.Run(path, func(t *testing.T) {
			resp, err := http.Post(ts.URL+path, "application/json",
				strings.NewReader(`{"sql": "SELECT k\nFROM kv WHERE ***"}`))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			var raw map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
				t.Fatal(err)
			}
			errObj, ok := raw["error"].(map[string]any)
			if !ok {
				t.Fatalf("no error object: %v", raw)
			}
			if errObj["code"] != "bad_request" {
				t.Fatalf("code %v, want bad_request", errObj["code"])
			}
			pos, ok := errObj["position"].(map[string]any)
			if !ok {
				t.Fatalf("no position object: %v", errObj)
			}
			// The offending token is the `*` on line 2.
			if pos["line"] != float64(2) || pos["col"] != float64(15) || pos["offset"] != float64(23) {
				t.Fatalf("position %v, want line 2 col 15 offset 23", pos)
			}
			if near, _ := pos["near"].(string); near == "" {
				t.Fatalf("position lacks near: %v", pos)
			}
		})
	}
	// A valid statement must not grow a position field.
	var okRaw map[string]any
	resp, err := http.Post(ts.URL+"/v1/query", "application/json",
		strings.NewReader(`{"sql": "SELEC nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&okRaw); err != nil {
		t.Fatal(err)
	}
	if e, ok := okRaw["error"].(map[string]any); !ok || e["position"] == nil {
		t.Fatalf("misspelled keyword should still carry a position: %v", okRaw)
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Valid JSON framing so the decoder reads past the byte cap
	// instead of bailing on a syntax error first.
	big := append([]byte(`{"sql":"`), bytes.Repeat([]byte("x"), maxBodyBytes+1024)...)
	big = append(big, `"}`...)
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Error.Code != "too_large" {
		t.Fatalf("code %q", e.Error.Code)
	}
}

func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/session", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var sess Session
	if err := json.NewDecoder(resp.Body).Decode(&sess); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sess.ID == "" {
		t.Fatal("empty session id")
	}

	if code := postQuery(t, ts, QueryRequest{SQL: `SELECT k FROM kv`, Session: sess.ID}, nil); code != http.StatusOK {
		t.Fatalf("query with session: %d", code)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/"+sess.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", dresp.StatusCode)
	}
	// Second delete: gone.
	dresp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusNotFound {
		t.Fatalf("re-delete: %d", dresp2.StatusCode)
	}
	// Using the deleted session fails.
	if code := postQuery(t, ts, QueryRequest{SQL: `SELECT k FROM kv`, Session: sess.ID}, nil); code != http.StatusNotFound {
		t.Fatalf("query with dead session: %d", code)
	}
}

func TestSessionExpiry(t *testing.T) {
	tbl := newSessionTable(50 * time.Millisecond)
	now := time.Now()
	s := tbl.create(now)
	if tbl.sweep(now.Add(10*time.Millisecond)) != 0 {
		t.Fatal("fresh session swept")
	}
	if n := tbl.sweep(now.Add(time.Second)); n != 1 {
		t.Fatalf("swept %d, want 1", n)
	}
	if _, err := tbl.get(s.ID); err == nil {
		t.Fatal("expired session still resolvable")
	}
	// Expiry must not depend on the sweeper: get() itself rejects a
	// session whose TTL lapsed, even before any sweep runs.
	s2 := tbl.create(time.Now().Add(-time.Second))
	if _, err := tbl.get(s2.ID); err == nil {
		t.Fatal("get accepted a session idle past its TTL")
	}
	if _, err := tbl.get(s2.ID); err == nil {
		t.Fatal("expired session not removed by get")
	}
}

func TestAdmissionRejectsWhenSaturated(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: -1, QueryTimeout: time.Second})
	// Occupy the single slot directly so the next request finds the
	// waiting room (capacity 0) full.
	if err := s.adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.adm.release()

	var e ErrorResponse
	code := postQuery(t, ts, QueryRequest{SQL: `SELECT k FROM kv`}, &e)
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", code)
	}
	if e.Error.Code != "overloaded" {
		t.Fatalf("code %q", e.Error.Code)
	}
	st := s.adm.snapshot()
	if st.Rejected == 0 {
		t.Fatalf("rejections not counted: %+v", st)
	}
}

func TestAdmissionWaiterTimesOut(t *testing.T) {
	a := newAdmission(1, 4)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := a.acquire(ctx); err != context.DeadlineExceeded {
		t.Fatalf("err %v, want DeadlineExceeded", err)
	}
	st := a.snapshot()
	if st.Abandoned != 1 || st.Waiting != 0 {
		t.Fatalf("stats: %+v", st)
	}
	a.release()
	// The freed slot is reusable.
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	a.release()
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 3})
	for i := 0; i < 5; i++ {
		postQuery(t, ts, QueryRequest{SQL: fmt.Sprintf(`SELECT k FROM kv WHERE k = %d`, i)}, nil)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Admission.MaxConcurrent != 3 {
		t.Fatalf("max_concurrent: %+v", st.Admission)
	}
	if st.Admission.Admitted < 5 {
		t.Fatalf("admitted %d, want >= 5", st.Admission.Admitted)
	}
	if st.Admission.InFlight != 0 {
		t.Fatalf("in_flight should be 0 at rest: %+v", st.Admission)
	}

	// DML through the server publishes a new epoch snapshot; the stats
	// endpoint exposes the current data epoch so operators can watch it
	// advance.
	before := st.DataEpoch
	if code := postQuery(t, ts, QueryRequest{SQL: `INSERT INTO kv VALUES (99, 'z')`}, nil); code != http.StatusOK {
		t.Fatalf("insert status %d", code)
	}
	resp2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st2 StatsResponse
	if err := json.NewDecoder(resp2.Body).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	if st2.DataEpoch <= before {
		t.Fatalf("data_epoch did not advance after DML: %d -> %d", before, st2.DataEpoch)
	}
}

// TestStatsHashWireShape pins the /v1/stats hash-table counter JSON:
// field names are API surface, and after an aggregate plus a join the
// cumulative counters must be populated.
func TestStatsHashWireShape(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code := postQuery(t, ts, QueryRequest{SQL: `SELECT v, COUNT(*) FROM kv GROUP BY v`}, nil); code != http.StatusOK {
		t.Fatalf("agg status %d", code)
	}
	if code := postQuery(t, ts, QueryRequest{SQL: `SELECT a.k FROM kv a JOIN kv b ON a.k = b.k`}, nil); code != http.StatusOK {
		t.Fatalf("join status %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	var hash map[string]json.Number
	if err := json.Unmarshal(raw["hash"], &hash); err != nil {
		t.Fatalf("hash section: %v", err)
	}
	for _, field := range []string{"tables", "entries", "resizes", "probe_max"} {
		if _, ok := hash[field]; !ok {
			t.Fatalf("hash section missing %q: %v", field, hash)
		}
	}
	if tables, _ := hash["tables"].Int64(); tables < 2 {
		t.Fatalf("want >= 2 hash tables (agg + join), got %v", hash["tables"])
	}
	if entries, _ := hash["entries"].Int64(); entries < 3 {
		t.Fatalf("want >= 3 cumulative entries, got %v", hash["entries"])
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}

// planCacheStats fetches the engine plan-cache counters via /v1/stats.
func planCacheStats(t *testing.T, ts *httptest.Server) (hits, misses uint64) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.PlanCache.Hits, st.PlanCache.Misses
}

// TestRepeatedParametrizedSelectSkipsPlanning is the acceptance check
// for the plan cache: after the first request, repeated parametrized
// SELECTs over HTTP are served entirely from the cached template — the
// counters show hits with zero fresh misses, i.e. the parser and
// rewriter never ran again.
func TestRepeatedParametrizedSelectSkipsPlanning(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := QueryRequest{SQL: `SELECT v FROM kv WHERE k = ?`}

	req.Params = []any{1}
	var got QueryResponse
	if code := postQuery(t, ts, req, &got); code != http.StatusOK {
		t.Fatalf("first request: %d", code)
	}
	if len(got.Rows) != 1 || got.Rows[0][0].(string) != "a" {
		t.Fatalf("first rows: %v", got.Rows)
	}

	hits0, misses0 := planCacheStats(t, ts)
	for i, want := range []string{"b", "c"} {
		req.Params = []any{i + 2}
		var res QueryResponse
		if code := postQuery(t, ts, req, &res); code != http.StatusOK {
			t.Fatalf("repeat %d: %d", i, code)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].(string) != want {
			t.Fatalf("repeat %d rows: %v", i, res.Rows)
		}
	}
	hits1, misses1 := planCacheStats(t, ts)
	if misses1 != misses0 {
		t.Fatalf("repeated requests re-planned: misses %d → %d", misses0, misses1)
	}
	if hits1 <= hits0 {
		t.Fatalf("repeated requests did not hit the cache: hits %d → %d", hits0, hits1)
	}
}

func TestNamedPreparedStatements(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/session", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var sess Session
	if err := json.NewDecoder(resp.Body).Decode(&sess); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Prepare a named statement on the session.
	body := fmt.Sprintf(`{"session": %q, "name": "get", "sql": "SELECT v FROM kv WHERE k = $1"}`, sess.ID)
	presp, err := http.Post(ts.URL+"/v1/prepare", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	var prep PrepareResponse
	if err := json.NewDecoder(presp.Body).Decode(&prep); err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK || prep.NumParams != 1 || !prep.Select {
		t.Fatalf("prepare: %d %+v", presp.StatusCode, prep)
	}

	// Execute by name.
	var got QueryResponse
	if code := postQuery(t, ts, QueryRequest{Stmt: "get", Session: sess.ID, Params: []any{3}}, &got); code != http.StatusOK {
		t.Fatalf("execute by name: %d", code)
	}
	if len(got.Rows) != 1 || got.Rows[0][0].(string) != "c" {
		t.Fatalf("rows: %v", got.Rows)
	}

	// stmt without a session is a client error; unknown names are 404.
	if code := postQuery(t, ts, QueryRequest{Stmt: "get"}, nil); code != http.StatusBadRequest {
		t.Fatalf("stmt without session: %d", code)
	}
	if code := postQuery(t, ts, QueryRequest{Stmt: "nope", Session: sess.ID}, nil); code != http.StatusNotFound {
		t.Fatalf("unknown stmt: %d", code)
	}
	// Both sql and stmt is ambiguous.
	if code := postQuery(t, ts, QueryRequest{SQL: "SELECT 1", Stmt: "get", Session: sess.ID}, nil); code != http.StatusBadRequest {
		t.Fatalf("sql+stmt: %d", code)
	}

	// Deallocate, then the name is gone.
	dreq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/prepare/get?session="+sess.ID, nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("deallocate: %d", dresp.StatusCode)
	}
	if code := postQuery(t, ts, QueryRequest{Stmt: "get", Session: sess.ID, Params: []any{3}}, nil); code != http.StatusNotFound {
		t.Fatalf("deallocated stmt still executes: %d", code)
	}
}

func TestPreparedDMLOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/session", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var sess Session
	if err := json.NewDecoder(resp.Body).Decode(&sess); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	body := fmt.Sprintf(`{"session": %q, "name": "ins", "sql": "INSERT INTO kv VALUES (?, ?)"}`, sess.ID)
	presp, err := http.Post(ts.URL+"/v1/prepare", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	var prep PrepareResponse
	json.NewDecoder(presp.Body).Decode(&prep)
	presp.Body.Close()
	if prep.Select || prep.NumParams != 2 {
		t.Fatalf("prepare DML: %+v", prep)
	}
	var got QueryResponse
	if code := postQuery(t, ts, QueryRequest{Stmt: "ins", Session: sess.ID, Params: []any{9, "i"}}, &got); code != http.StatusOK {
		t.Fatalf("insert by name: %d", code)
	}
	if got.RowsAffected == nil || *got.RowsAffected != 1 {
		t.Fatalf("rows_affected: %v", got.RowsAffected)
	}
	var sel QueryResponse
	postQuery(t, ts, QueryRequest{SQL: `SELECT v FROM kv WHERE k = ?`, Params: []any{9}}, &sel)
	if len(sel.Rows) != 1 || sel.Rows[0][0].(string) != "i" {
		t.Fatalf("insert not visible: %v", sel.Rows)
	}
}

func TestExplainOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var got QueryResponse
	code := postQuery(t, ts, QueryRequest{SQL: `SELECT v FROM kv WHERE k = ?`, Explain: true}, &got)
	if code != http.StatusOK {
		t.Fatalf("explain: %d", code)
	}
	if !strings.Contains(got.Plan, "Scan kv") || !strings.Contains(got.Plan, "$1") {
		t.Fatalf("plan text:\n%s", got.Plan)
	}
	if got.Rows != nil {
		t.Fatal("explain must not execute")
	}
	// Explain of DML is a client error.
	if code := postQuery(t, ts, QueryRequest{SQL: `DELETE FROM kv`, Explain: true}, nil); code != http.StatusBadRequest {
		t.Fatalf("explain DML: %d", code)
	}
}

func TestParamErrorsOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Arity mismatch is caught before execution: client error.
	var e ErrorResponse
	if code := postQuery(t, ts, QueryRequest{SQL: `SELECT v FROM kv WHERE k = ?`}, &e); code != http.StatusBadRequest {
		t.Fatalf("missing params: %d, want 400", code)
	}
	// Structured params cannot bind.
	body := `{"sql": "SELECT v FROM kv WHERE k = ?", "params": [[1,2]]}`
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("array param: %d", resp.StatusCode)
	}
}

func TestMethodRouting(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/query: %d, want 405", resp.StatusCode)
	}
}
