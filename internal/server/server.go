// Package server turns the embedded vectorwise engine into a
// multi-user network service: an HTTP + JSON query endpoint with
// session management, per-request timeouts, admission control capping
// concurrent statements, and structured error responses. It is the
// serving layer the Vectorwise product grew around its X100 core — the
// same shape Vertica later gave C-Store — scaled down to one process.
//
// Endpoints (all JSON):
//
//	POST   /v1/query          {"sql"|"stmt": "...", "params": [...], "explain": ?,
//	                           "session": "?", "timeout_ms": ?}
//	POST   /v1/query?stream=1 SELECT only: chunked NDJSON — a columns
//	                          header line, one {"rows":[...]} line per
//	                          vector batch, and a final trailer line
//	                          ({"done":true,...} or {"error":{...}})
//	POST   /v1/prepare        {"session": "...", "name": "...", "sql": "..."}
//	DELETE /v1/prepare/{name} ?session=...
//	POST   /v1/session        → {"id": "...", "created": "..."}
//	DELETE /v1/session/{id}
//	GET    /v1/stats          admission + session + plan-cache counters
//	GET    /v1/healthz
//
// SELECTs execute as streaming cursors bound to the request context:
// when the deadline passes or the client disconnects, the engine stops
// the statement at the next vector boundary and the admission slot
// frees immediately — an abandoned request cannot pin capacity for the
// statement's natural duration.
//
// Repeated statements should carry placeholders (`?` / `$N`) and
// params: the engine's plan cache then serves every request after the
// first without re-entering the lexer, parser, or rewriter — either
// transparently (same SQL text) or explicitly via per-session named
// prepared statements ("prepare once, execute by name").
//
// Concurrency: SELECTs run concurrently inside the engine, each
// against its own pinned epoch snapshot of the committed state — a
// slow or streaming reader never blocks DDL/DML, which serializes
// under the engine's write lock and publishes new state without
// waiting for open cursors. The admission controller bounds how many
// statements of any kind execute at once, with a bounded waiting room
// beyond the cap and 429 past that, so overload degrades by
// queueing-then-shedding rather than by collapse.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	vectorwise "vectorwise"
	"vectorwise/internal/catalog"
	"vectorwise/internal/core"
	"vectorwise/internal/plancache"
	"vectorwise/internal/sql"
	"vectorwise/internal/storage"
	"vectorwise/internal/txn"
	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

// Config tunes a Server. Zero values pick sensible defaults.
type Config struct {
	// MaxConcurrent caps statements executing simultaneously. The
	// default accounts for intra-query parallelism: each SELECT may
	// fan out to DB.Parallelism workers, so the cap defaults to
	// max(2, 2×GOMAXPROCS/Parallelism) to bound total runnable
	// goroutines near 2×GOMAXPROCS. When setting it explicitly, tune
	// it together with DB.Parallelism.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a slot beyond the cap
	// (default 4×MaxConcurrent; <0 disables the waiting room so the
	// cap rejects immediately). Requests past cap+queue get 429.
	MaxQueue int
	// QueryTimeout is the default per-request execution deadline
	// (default 30s). Clients may shorten it per request via
	// timeout_ms; they cannot exceed it.
	QueryTimeout time.Duration
	// SessionTTL expires sessions idle longer than this (default 15m;
	// <0 disables expiry).
	SessionTTL time.Duration
	// Name labels this node in /v1/health and /v1/stats — cluster
	// deployments set it to the node's shard/replica identity so
	// coordinator health checks and humans can tell nodes apart.
	Name string
}

func (c Config) withDefaults(parallelism int) Config {
	if c.MaxConcurrent <= 0 {
		if parallelism < 1 {
			parallelism = 1
		}
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0) / parallelism
		if c.MaxConcurrent < 2 {
			c.MaxConcurrent = 2
		}
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = 15 * time.Minute
	}
	return c
}

// Server serves SQL over HTTP against one vectorwise.DB.
type Server struct {
	db       *vectorwise.DB
	cfg      Config
	adm      *admission
	sessions *sessionTable
	mux      *http.ServeMux
	started  time.Time
	stop     chan struct{}
	// draining is set by BeginDrain: new statements are refused with
	// 503 while in-flight streaming cursors finish — the graceful
	// shutdown handshake a cluster coordinator observes via /v1/health
	// (it fails this node over instead of queueing behind the drain).
	draining atomic.Bool
}

// New builds a Server around db. Close it to stop the session reaper;
// closing the Server does not close the DB. New reads db.Parallelism
// to size the default admission cap, so set it before calling New.
func New(db *vectorwise.DB, cfg Config) *Server {
	cfg = cfg.withDefaults(db.Parallelism)
	s := &Server{
		db:       db,
		cfg:      cfg,
		adm:      newAdmission(cfg.MaxConcurrent, cfg.MaxQueue),
		sessions: newSessionTable(cfg.SessionTTL),
		mux:      http.NewServeMux(),
		started:  time.Now(),
		stop:     make(chan struct{}),
	}
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/load", s.handleLoad)
	s.mux.HandleFunc("POST /v1/prepare", s.handlePrepare)
	s.mux.HandleFunc("GET /v1/health", s.handleHealth)
	s.mux.HandleFunc("DELETE /v1/prepare/{name}", s.handlePrepareDelete)
	s.mux.HandleFunc("POST /v1/session", s.handleSessionCreate)
	s.mux.HandleFunc("DELETE /v1/session/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	go s.reap()
	return s
}

// Handler returns the HTTP handler (mount it on an http.Server or an
// httptest.Server).
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the background session reaper.
func (s *Server) Close() { close(s.stop) }

// BeginDrain puts the server into draining mode: every subsequent
// statement (query, load, prepare) is refused with 503/"draining",
// while statements already executing — including open streaming
// cursors — run to completion. Callers then use http.Server.Shutdown,
// which waits for those in-flight responses, so a drained process never
// truncates a stream mid-flight. /v1/health reports "draining" so
// cluster coordinators stop routing here immediately.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// refuseDraining writes the 503 drain response if the server is
// draining, reporting whether it did.
func (s *Server) refuseDraining(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	writeError(w, http.StatusServiceUnavailable, "draining",
		"server is draining before shutdown; retry on another replica")
	return true
}

// reap expires idle sessions until Close.
func (s *Server) reap() {
	if s.cfg.SessionTTL <= 0 {
		return
	}
	tick := time.NewTicker(s.cfg.SessionTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case now := <-tick.C:
			s.sessions.sweep(now)
		}
	}
}

// QueryRequest is the /v1/query request body. Exactly one of SQL or
// Stmt must be set.
type QueryRequest struct {
	SQL string `json:"sql,omitempty"`
	// Stmt names a prepared statement registered on the session via
	// POST /v1/prepare; requires Session.
	Stmt string `json:"stmt,omitempty"`
	// Params bind the statement's `?` / `$N` placeholders in order
	// (Params[0] binds $1).
	Params []any `json:"params,omitempty"`
	// Explain returns the optimized plan text instead of executing
	// (SELECT only); unbound placeholders render as $N.
	Explain bool `json:"explain,omitempty"`
	// Session is an optional session id from POST /v1/session.
	Session string `json:"session,omitempty"`
	// TimeoutMs optionally shortens the server's QueryTimeout for this
	// request.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// QueryResponse is the /v1/query success body.
type QueryResponse struct {
	// Columns and Rows are set for SELECT.
	Columns []string `json:"columns,omitempty"`
	Rows    [][]any  `json:"rows,omitempty"`
	// RowsAffected is set for DDL/DML.
	RowsAffected *int64 `json:"rows_affected,omitempty"`
	// Plan is set for explain requests.
	Plan      string  `json:"plan,omitempty"`
	ElapsedMs float64 `json:"elapsed_ms"`
}

// PrepareRequest is the /v1/prepare request body.
type PrepareRequest struct {
	// Session is the owning session id (required: prepared statements
	// are per-session state).
	Session string `json:"session"`
	// Name is the handle later requests execute via "stmt".
	Name string `json:"name"`
	SQL  string `json:"sql"`
}

// PrepareResponse is the /v1/prepare success body.
type PrepareResponse struct {
	Name string `json:"name"`
	// NumParams is how many placeholder values the statement takes.
	NumParams int `json:"num_params"`
	// Select reports whether the statement is a SELECT.
	Select bool `json:"select"`
}

// ErrorBody is the structured error payload.
type ErrorBody struct {
	// Code is a stable machine-readable identifier: bad_request,
	// too_large, overloaded, timeout, conflict, not_found, internal.
	Code    string `json:"code"`
	Message string `json:"message"`
	// Position locates a SQL parse error in the statement text; absent
	// for every other error class.
	Position *ErrorPosition `json:"position,omitempty"`
}

// ErrorPosition pinpoints a parse error: byte offset into the
// statement, 1-based line and column, and the offending token text.
type ErrorPosition struct {
	Offset int    `json:"offset"`
	Line   int    `json:"line"`
	Col    int    `json:"col"`
	Near   string `json:"near,omitempty"`
}

// PositionOf extracts the statement position from a parse error, or
// nil if err carries none.
func PositionOf(err error) *ErrorPosition {
	var pe *sql.ParseError
	if errors.As(err, &pe) {
		return &ErrorPosition{Offset: pe.Offset, Line: pe.Line, Col: pe.Col, Near: pe.Near}
	}
	return nil
}

// ErrorResponse wraps every non-2xx body.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// StatsResponse is the /v1/stats body.
type StatsResponse struct {
	Admission AdmissionStats `json:"admission"`
	// PlanCache exposes the engine's statement-cache counters; a
	// healthy parametrized workload shows hits ≫ misses.
	PlanCache plancache.Stats `json:"plan_cache"`
	// Scan exposes cumulative row-group counters: groups decompressed
	// vs groups skipped by min/max data skipping. A selective
	// clustered workload shows groups_pruned climbing with traffic.
	Scan storage.ScanStatsSnapshot `json:"scan"`
	// Hash exposes cumulative hash-table counters from agg/join
	// operators: tables built, distinct keys held, directory resizes,
	// and the longest linear-probe distance observed. Probe_max
	// climbing far past single digits signals pathological clustering.
	Hash core.HashStatsTotalsSnapshot `json:"hash"`
	// DataEpoch is the engine's committed-state version: it advances on
	// every DML commit, tuple-mover fold or stable-image swap,
	// checkpoint and bulk load. A frozen epoch under write traffic
	// means commits are not landing.
	DataEpoch uint64 `json:"data_epoch"`
	// Mover exposes the background tuple mover's cumulative counters
	// (passes, folds, stable rebuilds, abandoned installs).
	Mover    vectorwise.MoverStats `json:"mover"`
	Sessions int                   `json:"sessions"`
	UptimeMs int64                 `json:"uptime_ms"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorResponse{Error: ErrorBody{Code: code, Message: msg}})
}

// engineErrorBody maps an engine error onto a status and structured
// body (shared by the JSON response path and the NDJSON trailer path).
func engineErrorBody(err error) (int, ErrorBody) {
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		// The statement was canceled mid-flight by the request deadline
		// or a client disconnect.
		return http.StatusGatewayTimeout, ErrorBody{Code: "timeout", Message: "statement canceled: " + err.Error()}
	case errors.Is(err, txn.ErrConflict):
		return http.StatusConflict, ErrorBody{Code: "conflict", Message: err.Error()}
	case errors.Is(err, catalog.ErrUnknownTable):
		return http.StatusNotFound, ErrorBody{Code: "not_found", Message: err.Error()}
	case PositionOf(err) != nil:
		// A parse error surfacing from the engine (e.g. a statement that
		// bypassed the front-door classification) is the client's fault,
		// and it keeps its position.
		return http.StatusBadRequest, ErrorBody{Code: "bad_request", Message: err.Error(), Position: PositionOf(err)}
	default:
		return http.StatusInternalServerError, ErrorBody{Code: "internal", Message: err.Error()}
	}
}

// writeEngineError maps an engine error onto a structured response.
func writeEngineError(w http.ResponseWriter, err error) {
	status, body := engineErrorBody(err)
	writeJSON(w, status, ErrorResponse{Error: body})
}

// maxBodyBytes bounds /v1/query request bodies.
const maxBodyBytes = 1 << 20

// decodeBody decodes a JSON request body with numbers preserved as
// json.Number (so int64 parameters survive without float rounding),
// mapping size and syntax failures to structured errors. It reports
// whether decoding succeeded.
func decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.UseNumber()
	if err := dec.Decode(into); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "too_large",
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON body: "+err.Error())
		return false
	}
	return true
}

// convertParams unboxes JSON parameter values for the engine:
// json.Number becomes int64 when integral (float64 otherwise), and
// strings, bools and nulls pass through.
func convertParams(in []any) ([]any, error) {
	if len(in) == 0 {
		return nil, nil
	}
	out := make([]any, len(in))
	for i, p := range in {
		switch v := p.(type) {
		case json.Number:
			if n, err := v.Int64(); err == nil {
				out[i] = n
				continue
			}
			f, err := v.Float64()
			if err != nil {
				return nil, fmt.Errorf("param %d: bad number %q", i+1, v.String())
			}
			out[i] = f
		case string, bool, nil:
			out[i] = v
		default:
			return nil, fmt.Errorf("param %d: unsupported JSON value %T (arrays/objects cannot bind)", i+1, p)
		}
	}
	return out, nil
}

// writePrepareError maps a Prepare failure: planner references to
// unknown tables are 404, anything else (syntax, typing, transaction
// control) is the client's fault.
func writePrepareError(w http.ResponseWriter, err error) {
	if errors.Is(err, catalog.ErrUnknownTable) {
		writeError(w, http.StatusNotFound, "not_found", err.Error())
		return
	}
	writeError(w, http.StatusBadRequest, "bad_request", err.Error())
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	var req QueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if (req.SQL == "") == (req.Stmt == "") {
		writeError(w, http.StatusBadRequest, "bad_request", `provide exactly one of "sql" or "stmt"`)
		return
	}
	var sess *Session
	if req.Session != "" {
		var err error
		if sess, err = s.sessions.get(req.Session); err != nil {
			writeError(w, http.StatusNotFound, "not_found", err.Error())
			return
		}
		sess.touch(time.Now())
	}

	// Resolve the statement up front: syntax errors are the client's
	// fault (400) and must not consume an execution slot. Session
	// statements and warm texts resolve straight from the plan cache
	// with no parsing; a cold text gets a parse-only validation here,
	// and its planning runs after admission — so the controller's cap
	// bounds planner work exactly like execution work.
	var stmt *vectorwise.Stmt // nil for a cold text
	var isSelect bool
	var numParams int
	if req.Stmt != "" {
		if sess == nil {
			writeError(w, http.StatusBadRequest, "bad_request", `executing by "stmt" requires a "session"`)
			return
		}
		st, ok := sess.stmt(req.Stmt)
		if !ok {
			writeError(w, http.StatusNotFound, "not_found",
				fmt.Sprintf("no prepared statement %q on this session", req.Stmt))
			return
		}
		stmt, isSelect, numParams = st, st.IsSelect(), st.NumParams()
	} else if st, ok := s.db.LookupPrepared(req.SQL); ok {
		stmt, isSelect, numParams = st, st.IsSelect(), st.NumParams()
	} else {
		// Deliberate trade-off: a cold text is parsed here for the
		// 400-vs-slot classification and parsed again by the engine on
		// execution. Folding the two would mean garbage statements
		// consume admission slots; parse is the cheap half of the
		// front end, and warm texts skip both parses entirely.
		st, err := sql.Parse(req.SQL)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: ErrorBody{
				Code: "bad_request", Message: err.Error(), Position: PositionOf(err),
			}})
			return
		}
		if _, ok := st.AST.(*sql.TxStmt); ok {
			st.Release()
			writeError(w, http.StatusBadRequest, "bad_request",
				"explicit transactions are not supported over HTTP; each statement commits atomically")
			return
		}
		switch st.AST.(type) {
		case *sql.SelectStmt, *sql.SetOpStmt:
			isSelect = true
		}
		numParams = st.NumParams
		st.Release()
	}
	if req.Explain && !isSelect {
		writeError(w, http.StatusBadRequest, "bad_request", "explain supports SELECT only")
		return
	}
	stream := r.URL.Query().Get("stream") == "1"
	if stream && (!isSelect || req.Explain) {
		writeError(w, http.StatusBadRequest, "bad_request", "stream=1 supports SELECT only")
		return
	}
	params, err := convertParams(req.Params)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	// Explain ignores params (the plan renders unbound $N slots); for
	// execution the binding arity must match.
	if !req.Explain && len(params) != numParams {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("statement takes %d parameters, got %d", numParams, len(params)))
		return
	}

	timeout := s.cfg.QueryTimeout
	if req.TimeoutMs > 0 {
		if d := time.Duration(req.TimeoutMs) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	if err := s.adm.acquire(ctx); err != nil {
		if errors.Is(err, ErrOverloaded) {
			writeError(w, http.StatusTooManyRequests, "overloaded", err.Error())
		} else {
			writeError(w, http.StatusGatewayTimeout, "timeout",
				"timed out waiting for an execution slot")
		}
		return
	}

	start := time.Now()

	// Streaming runs on the handler goroutine: the cursor pulls batches
	// directly onto the wire, and the request context cancels the
	// statement between batches if the client goes away.
	if stream {
		s.streamQuery(w, ctx, stmt, req.SQL, params, start)
		return
	}

	// Execute on a worker goroutine so the handler can honor the
	// deadline even for statements that outlive it. SELECTs run as
	// context-bound cursors, so on timeout/disconnect the engine stops
	// at the next vector boundary and the worker releases its admission
	// slot almost immediately. DDL/DML commits are not interruptible
	// mid-statement; only there can the slot outlive the response, and
	// the cap stays truthful about engine load either way.
	type outcome struct {
		resp QueryResponse
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		var o outcome
		// Release the slot before signalling completion so a client
		// that saw its response (or anyone reading /v1/stats after it)
		// observes the slot as free — the release happens-before the
		// HTTP reply.
		func() {
			defer s.adm.release()
			// Explain plans (on a cold text) but does not execute; it
			// runs inside the admission slot so a burst of distinct
			// explain texts is bounded like any other planner work.
			if req.Explain {
				sqlText := req.SQL
				if stmt != nil {
					sqlText = stmt.SQL()
				}
				plan, err := s.db.Explain(sqlText)
				if err != nil {
					o.err = err
					return
				}
				o.resp.Plan = plan
				return
			}
			if isSelect {
				rows, err := s.openRows(ctx, stmt, req.SQL, params)
				if err != nil {
					o.err = err
					return
				}
				cols := rows.Columns()
				enc, err := collectEncoded(rows)
				if err != nil {
					o.err = err
					return
				}
				o.resp.Columns = cols
				o.resp.Rows = enc
			} else {
				var n int64
				var err error
				if stmt != nil {
					n, err = stmt.Exec(params...)
				} else {
					n, err = s.db.ExecArgs(req.SQL, params...)
				}
				if err != nil {
					o.err = err
					return
				}
				o.resp.RowsAffected = &n
			}
		}()
		done <- o
	}()

	select {
	case o := <-done:
		if o.err != nil {
			writeEngineError(w, o.err)
			return
		}
		o.resp.ElapsedMs = float64(time.Since(start)) / float64(time.Millisecond)
		writeJSON(w, http.StatusOK, o.resp)
	case <-ctx.Done():
		writeError(w, http.StatusGatewayTimeout, "timeout",
			fmt.Sprintf("statement exceeded %v", timeout))
	}
}

// openRows opens a streaming cursor for a SELECT, via the session's
// prepared statement when one was named or the raw SQL text otherwise.
func (s *Server) openRows(ctx context.Context, stmt *vectorwise.Stmt, sqlText string, params []any) (*vectorwise.Rows, error) {
	if stmt != nil {
		return stmt.QueryContext(ctx, params...)
	}
	return s.db.QueryContext(ctx, sqlText, params...)
}

// collectEncoded drains a cursor into JSON-ready rows, encoding
// straight from the engine's batches (no intermediate boxed rows).
func collectEncoded(rows *vectorwise.Rows) ([][]any, error) {
	defer rows.Close()
	var out [][]any
	for {
		b, err := rows.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		out = append(out, EncodeBatch(b)...)
	}
}

// StreamHeader is the first NDJSON line of a streamed query response.
type StreamHeader struct {
	Columns []string `json:"columns"`
}

// StreamBatch is one NDJSON line per vector batch of a streamed query.
type StreamBatch struct {
	Rows [][]any `json:"rows"`
}

// StreamTrailer is the final NDJSON line of a successful stream.
type StreamTrailer struct {
	Done      bool    `json:"done"`
	RowsTotal int64   `json:"rows_total"`
	ElapsedMs float64 `json:"elapsed_ms"`
}

// StreamErrorTrailer is the final NDJSON line of a failed stream. Kind
// types the failure so a consumer retrying against a replica (the
// cluster coordinator) can decide retry-vs-fail without parsing
// message text: a "query" failure is deterministic and will fail
// identically on every replica, while "timeout"/"canceled" reflect
// this request's lifecycle, not the statement.
type StreamErrorTrailer struct {
	Error ErrorBody `json:"error"`
	// Kind is "timeout" (request deadline), "canceled" (client
	// disconnect or server-side cancellation) or "query" (the statement
	// itself failed).
	Kind string `json:"error_kind"`
}

// errorKind classifies a streaming failure for StreamErrorTrailer.
func errorKind(err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return "query"
	}
}

// streamQuery streams a SELECT as chunked NDJSON: a StreamHeader line,
// one StreamBatch line per engine vector batch (flushed as produced),
// then a StreamTrailer — or an ErrorResponse line if the statement
// fails mid-stream (including cancellation). The caller has acquired an
// admission slot; streamQuery holds it for the life of the cursor
// (streaming is engine load: the cursor pins an epoch snapshot and
// drives the operator tree) and releases it on return.
//
// Every connection write carries a deadline of QueryTimeout: a client
// that stops reading its socket (without closing it) would otherwise
// block the handler inside the write forever — the request context is
// only checked between batches, not during a stalled conn write — and
// with it pin the snapshot and the admission slot indefinitely.
// With the deadline, a stalled write fails, the cursor closes and the
// slot frees.
func (s *Server) streamQuery(w http.ResponseWriter, ctx context.Context, stmt *vectorwise.Stmt, sqlText string, params []any, start time.Time) {
	defer s.adm.release()
	rows, err := s.openRows(ctx, stmt, sqlText, params)
	if err != nil {
		// Nothing sent yet: a plain HTTP error is still possible.
		writeEngineError(w, err)
		return
	}
	defer rows.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	rc := http.NewResponseController(w)
	writeLine := func(v any) error {
		// Best-effort deadline: unsupported writers fall back to the
		// unbounded write rather than failing the stream.
		_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.QueryTimeout))
		if err := enc.Encode(v); err != nil {
			return err
		}
		return rc.Flush()
	}
	if err := writeLine(StreamHeader{Columns: rows.Columns()}); err != nil {
		return
	}
	var total int64
	for {
		b, err := rows.NextBatch()
		if err != nil {
			// Too late for an HTTP status; the error travels as the
			// trailer line and the missing "done" marks truncation.
			_, body := engineErrorBody(err)
			_ = writeLine(StreamErrorTrailer{Error: body, Kind: errorKind(err)})
			return
		}
		if b == nil {
			break
		}
		if err := writeLine(StreamBatch{Rows: EncodeBatch(b)}); err != nil {
			// Conn dead or stalled past the deadline: stop pulling.
			return
		}
		total += int64(b.N)
	}
	_ = writeLine(StreamTrailer{
		Done:      true,
		RowsTotal: total,
		ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// EncodeBatch encodes one engine vector batch for JSON: NULL → null,
// BIGINT → number, DOUBLE → number, VARCHAR → string, BOOLEAN → bool,
// DATE → "YYYY-MM-DD".
func EncodeBatch(b *vector.Batch) [][]any {
	out := make([][]any, b.N)
	for i := 0; i < b.N; i++ {
		ix := b.LiveIndex(i)
		enc := make([]any, len(b.Vecs))
		for j, v := range b.Vecs {
			enc[j] = encodeValue(v.Get(ix))
		}
		out[i] = enc
	}
	return out
}

func encodeValue(v vtypes.Value) any {
	if v.Null {
		return nil
	}
	switch v.Kind {
	case vtypes.KindI64:
		return v.I64
	case vtypes.KindF64:
		return v.F64
	case vtypes.KindStr:
		return v.Str
	case vtypes.KindBool:
		return v.B
	case vtypes.KindDate:
		return vtypes.FormatDate(v.I64)
	default:
		return v.String()
	}
}

// maxSessionStmts bounds named prepared statements per session so a
// client cannot grow server memory without bound.
const maxSessionStmts = 64

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	var req PrepareRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Session == "" || req.Name == "" || req.SQL == "" {
		writeError(w, http.StatusBadRequest, "bad_request", `"session", "name" and "sql" are all required`)
		return
	}
	sess, err := s.sessions.get(req.Session)
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", err.Error())
		return
	}
	sess.touch(time.Now())
	// Prepare plans the statement, so it takes an admission slot like
	// any other planner work — a flood of distinct prepares sheds with
	// 429 instead of running unbounded concurrent planning.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
	defer cancel()
	if err := s.adm.acquire(ctx); err != nil {
		if errors.Is(err, ErrOverloaded) {
			writeError(w, http.StatusTooManyRequests, "overloaded", err.Error())
		} else {
			writeError(w, http.StatusGatewayTimeout, "timeout",
				"timed out waiting for an execution slot")
		}
		return
	}
	stmt, err := s.db.Prepare(req.SQL)
	s.adm.release()
	if err != nil {
		writePrepareError(w, err)
		return
	}
	if !sess.setStmt(req.Name, stmt, maxSessionStmts) {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("session holds %d prepared statements; deallocate one first", maxSessionStmts))
		return
	}
	writeJSON(w, http.StatusOK, PrepareResponse{
		Name:      req.Name,
		NumParams: stmt.NumParams(),
		Select:    stmt.IsSelect(),
	})
}

func (s *Server) handlePrepareDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sid := r.URL.Query().Get("session")
	if sid == "" {
		writeError(w, http.StatusBadRequest, "bad_request", `missing "session" query parameter`)
		return
	}
	sess, err := s.sessions.get(sid)
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", err.Error())
		return
	}
	sess.touch(time.Now())
	if !sess.removeStmt(name) {
		writeError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("no prepared statement %q on this session", name))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	sess := s.sessions.create(time.Now())
	writeJSON(w, http.StatusOK, sess)
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.sessions.remove(id) {
		writeError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("unknown or expired session %q", id))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		Admission: s.adm.snapshot(),
		PlanCache: s.db.PlanCacheStats(),
		Scan:      s.db.ScanStats(),
		Hash:      s.db.HashStats(),
		DataEpoch: s.db.Epoch(),
		Mover:     s.db.MoverStats(),
		Sessions:  s.sessions.count(),
		UptimeMs:  time.Since(s.started).Milliseconds(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// HealthResponse is the /v1/health body — the cheap liveness probe a
// cluster coordinator polls per replica. Status is "ok" or "draining";
// DataEpoch lets the prober detect replicas whose committed state has
// stopped advancing relative to their peers.
type HealthResponse struct {
	Status    string `json:"status"`
	Name      string `json:"name,omitempty"`
	DataEpoch uint64 `json:"data_epoch"`
	UptimeMs  int64  `json:"uptime_ms"`
}

// handleHealth serves the liveness probe. It takes no admission slot
// and no DB lock beyond the atomic epoch read, so it stays responsive
// under full query load — exactly what a failover health check needs.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:    status,
		Name:      s.cfg.Name,
		DataEpoch: s.db.Epoch(),
		UptimeMs:  time.Since(s.started).Milliseconds(),
	})
}

// LoadResponse is the /v1/load success body.
type LoadResponse struct {
	RowsLoaded int64   `json:"rows_loaded"`
	ElapsedMs  float64 `json:"elapsed_ms"`
}

// maxLoadBytes bounds /v1/load request bodies (bulk CSV is allowed to
// be much larger than a statement body).
const maxLoadBytes = 1 << 30

// handleLoad bulk-loads CSV from the request body into the table named
// by the ?table= query parameter via DB.CopyFrom — the per-node half of
// the cluster's sharded ingest fan-out. Options mirror CopyOptions:
// ?header=1 (or header=true) skips a header record, ?null=TOK reads TOK
// as NULL.
func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	table := r.URL.Query().Get("table")
	if table == "" {
		writeError(w, http.StatusBadRequest, "bad_request", `missing "table" query parameter`)
		return
	}
	opts := vectorwise.CopyOptions{
		Header: boolParam(r, "header"),
		Null:   r.URL.Query().Get("null"),
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
	defer cancel()
	if err := s.adm.acquire(ctx); err != nil {
		if errors.Is(err, ErrOverloaded) {
			writeError(w, http.StatusTooManyRequests, "overloaded", err.Error())
		} else {
			writeError(w, http.StatusGatewayTimeout, "timeout",
				"timed out waiting for an execution slot")
		}
		return
	}
	defer s.adm.release()
	start := time.Now()
	n, err := s.db.CopyFrom(table, http.MaxBytesReader(w, r.Body, maxLoadBytes), opts)
	if err != nil {
		if errors.Is(err, catalog.ErrUnknownTable) {
			writeError(w, http.StatusNotFound, "not_found", err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, LoadResponse{
		RowsLoaded: n,
		ElapsedMs:  float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// boolParam reads a boolean query parameter, accepting any form
// strconv.ParseBool does ("1", "true", "TRUE", ...). Absent or
// unparseable values read as false.
func boolParam(r *http.Request, name string) bool {
	b, err := strconv.ParseBool(r.URL.Query().Get(name))
	return err == nil && b
}
