// Package server turns the embedded vectorwise engine into a
// multi-user network service: an HTTP + JSON query endpoint with
// session management, per-request timeouts, admission control capping
// concurrent statements, and structured error responses. It is the
// serving layer the Vectorwise product grew around its X100 core — the
// same shape Vertica later gave C-Store — scaled down to one process.
//
// Endpoints (all JSON):
//
//	POST   /v1/query          {"sql": "...", "session": "?", "timeout_ms": ?}
//	POST   /v1/session        → {"id": "...", "created": "..."}
//	DELETE /v1/session/{id}
//	GET    /v1/stats          admission + session counters
//	GET    /v1/healthz
//
// Concurrency: SELECTs run concurrently inside the engine (shared read
// lock on vectorwise.DB); DDL/DML serializes under the engine's write
// lock. The admission controller bounds how many statements of any
// kind execute at once, with a bounded waiting room beyond the cap and
// 429 past that, so overload degrades by queueing-then-shedding rather
// than by collapse.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	vectorwise "vectorwise"
	"vectorwise/internal/catalog"
	"vectorwise/internal/sql"
	"vectorwise/internal/txn"
	"vectorwise/internal/vtypes"
)

// Config tunes a Server. Zero values pick sensible defaults.
type Config struct {
	// MaxConcurrent caps statements executing simultaneously. The
	// default accounts for intra-query parallelism: each SELECT may
	// fan out to DB.Parallelism workers, so the cap defaults to
	// max(2, 2×GOMAXPROCS/Parallelism) to bound total runnable
	// goroutines near 2×GOMAXPROCS. When setting it explicitly, tune
	// it together with DB.Parallelism.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a slot beyond the cap
	// (default 4×MaxConcurrent; <0 disables the waiting room so the
	// cap rejects immediately). Requests past cap+queue get 429.
	MaxQueue int
	// QueryTimeout is the default per-request execution deadline
	// (default 30s). Clients may shorten it per request via
	// timeout_ms; they cannot exceed it.
	QueryTimeout time.Duration
	// SessionTTL expires sessions idle longer than this (default 15m;
	// <0 disables expiry).
	SessionTTL time.Duration
}

func (c Config) withDefaults(parallelism int) Config {
	if c.MaxConcurrent <= 0 {
		if parallelism < 1 {
			parallelism = 1
		}
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0) / parallelism
		if c.MaxConcurrent < 2 {
			c.MaxConcurrent = 2
		}
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = 15 * time.Minute
	}
	return c
}

// Server serves SQL over HTTP against one vectorwise.DB.
type Server struct {
	db       *vectorwise.DB
	cfg      Config
	adm      *admission
	sessions *sessionTable
	mux      *http.ServeMux
	started  time.Time
	stop     chan struct{}
}

// New builds a Server around db. Close it to stop the session reaper;
// closing the Server does not close the DB. New reads db.Parallelism
// to size the default admission cap, so set it before calling New.
func New(db *vectorwise.DB, cfg Config) *Server {
	cfg = cfg.withDefaults(db.Parallelism)
	s := &Server{
		db:       db,
		cfg:      cfg,
		adm:      newAdmission(cfg.MaxConcurrent, cfg.MaxQueue),
		sessions: newSessionTable(cfg.SessionTTL),
		mux:      http.NewServeMux(),
		started:  time.Now(),
		stop:     make(chan struct{}),
	}
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/session", s.handleSessionCreate)
	s.mux.HandleFunc("DELETE /v1/session/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	go s.reap()
	return s
}

// Handler returns the HTTP handler (mount it on an http.Server or an
// httptest.Server).
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the background session reaper.
func (s *Server) Close() { close(s.stop) }

// reap expires idle sessions until Close.
func (s *Server) reap() {
	if s.cfg.SessionTTL <= 0 {
		return
	}
	tick := time.NewTicker(s.cfg.SessionTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case now := <-tick.C:
			s.sessions.sweep(now)
		}
	}
}

// QueryRequest is the /v1/query request body.
type QueryRequest struct {
	SQL string `json:"sql"`
	// Session is an optional session id from POST /v1/session.
	Session string `json:"session,omitempty"`
	// TimeoutMs optionally shortens the server's QueryTimeout for this
	// request.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// QueryResponse is the /v1/query success body.
type QueryResponse struct {
	// Columns and Rows are set for SELECT.
	Columns []string `json:"columns,omitempty"`
	Rows    [][]any  `json:"rows,omitempty"`
	// RowsAffected is set for DDL/DML.
	RowsAffected *int64  `json:"rows_affected,omitempty"`
	ElapsedMs    float64 `json:"elapsed_ms"`
}

// ErrorBody is the structured error payload.
type ErrorBody struct {
	// Code is a stable machine-readable identifier: bad_request,
	// too_large, overloaded, timeout, conflict, not_found, internal.
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorResponse wraps every non-2xx body.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// StatsResponse is the /v1/stats body.
type StatsResponse struct {
	Admission AdmissionStats `json:"admission"`
	Sessions  int            `json:"sessions"`
	UptimeMs  int64          `json:"uptime_ms"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorResponse{Error: ErrorBody{Code: code, Message: msg}})
}

// writeEngineError maps an engine error onto a structured response.
func writeEngineError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, txn.ErrConflict):
		writeError(w, http.StatusConflict, "conflict", err.Error())
	case errors.Is(err, catalog.ErrUnknownTable):
		writeError(w, http.StatusNotFound, "not_found", err.Error())
	default:
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

// maxBodyBytes bounds /v1/query request bodies.
const maxBodyBytes = 1 << 20

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "too_large",
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON body: "+err.Error())
		return
	}
	if req.SQL == "" {
		writeError(w, http.StatusBadRequest, "bad_request", `missing "sql" field`)
		return
	}
	if req.Session != "" {
		sess, err := s.sessions.get(req.Session)
		if err != nil {
			writeError(w, http.StatusNotFound, "not_found", err.Error())
			return
		}
		sess.touch(time.Now())
	}

	// Parse up front: syntax errors are the client's fault (400) and
	// should not consume an execution slot.
	stmt, err := sql.Parse(req.SQL)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if _, ok := stmt.(*sql.TxStmt); ok {
		writeError(w, http.StatusBadRequest, "bad_request",
			"explicit transactions are not supported over HTTP; each statement commits atomically")
		return
	}

	timeout := s.cfg.QueryTimeout
	if req.TimeoutMs > 0 {
		if d := time.Duration(req.TimeoutMs) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	if err := s.adm.acquire(ctx); err != nil {
		if errors.Is(err, ErrOverloaded) {
			writeError(w, http.StatusTooManyRequests, "overloaded", err.Error())
		} else {
			writeError(w, http.StatusGatewayTimeout, "timeout",
				"timed out waiting for an execution slot")
		}
		return
	}

	// Execute on a worker goroutine so the handler can honor the
	// deadline. The engine is not yet cancellable mid-statement, so on
	// timeout the worker keeps its admission slot until the statement
	// finishes — the cap stays truthful about engine load.
	start := time.Now()
	type outcome struct {
		resp QueryResponse
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		var o outcome
		// Release the slot before signalling completion so a client
		// that saw its response (or anyone reading /v1/stats after it)
		// observes the slot as free — the release happens-before the
		// HTTP reply.
		func() {
			defer s.adm.release()
			switch stmt.(type) {
			case *sql.SelectStmt:
				res, err := s.db.Query(req.SQL)
				if err != nil {
					o.err = err
					return
				}
				o.resp.Columns = res.Columns
				o.resp.Rows = encodeRows(res.Rows)
			default:
				n, err := s.db.Exec(req.SQL)
				if err != nil {
					o.err = err
					return
				}
				o.resp.RowsAffected = &n
			}
		}()
		done <- o
	}()

	select {
	case o := <-done:
		if o.err != nil {
			writeEngineError(w, o.err)
			return
		}
		o.resp.ElapsedMs = float64(time.Since(start)) / float64(time.Millisecond)
		writeJSON(w, http.StatusOK, o.resp)
	case <-ctx.Done():
		writeError(w, http.StatusGatewayTimeout, "timeout",
			fmt.Sprintf("statement exceeded %v", timeout))
	}
}

// encodeRows boxes result rows for JSON: NULL → null, BIGINT → number,
// DOUBLE → number, VARCHAR → string, BOOLEAN → bool, DATE → "YYYY-MM-DD".
func encodeRows(rows []vtypes.Row) [][]any {
	out := make([][]any, len(rows))
	for i, row := range rows {
		enc := make([]any, len(row))
		for j, v := range row {
			enc[j] = encodeValue(v)
		}
		out[i] = enc
	}
	return out
}

func encodeValue(v vtypes.Value) any {
	if v.Null {
		return nil
	}
	switch v.Kind {
	case vtypes.KindI64:
		return v.I64
	case vtypes.KindF64:
		return v.F64
	case vtypes.KindStr:
		return v.Str
	case vtypes.KindBool:
		return v.B
	case vtypes.KindDate:
		return vtypes.FormatDate(v.I64)
	default:
		return v.String()
	}
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	sess := s.sessions.create(time.Now())
	writeJSON(w, http.StatusOK, sess)
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.sessions.remove(id) {
		writeError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("unknown or expired session %q", id))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		Admission: s.adm.snapshot(),
		Sessions:  s.sessions.count(),
		UptimeMs:  time.Since(s.started).Milliseconds(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
