package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	vectorwise "vectorwise"
)

// newBigTestServer builds a Server over a DB with a bulk-loaded table
// of n rows — big enough that a full scan/sort outlives short request
// timeouts.
func newBigTestServer(t *testing.T, cfg Config, n int) (*Server, *httptest.Server) {
	t.Helper()
	db := vectorwise.OpenMemory()
	if _, err := db.Exec(`CREATE TABLE big (k BIGINT, v DOUBLE, tag VARCHAR)`); err != nil {
		t.Fatal(err)
	}
	tags := []string{"x", "y", "z", "w"}
	ks := make([]int64, n)
	vs := make([]float64, n)
	ts := make([]string, n)
	for i := 0; i < n; i++ {
		ks[i] = int64(i)
		vs[i] = float64((i * 7919) % 10007)
		ts[i] = tags[i%len(tags)]
	}
	if _, err := db.LoadBatch("big", []any{ks, vs, ts}, nil); err != nil {
		t.Fatal(err)
	}
	s := New(db, cfg)
	ts2 := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts2.Close(); s.Close() })
	return s, ts2
}

// postStream issues a streaming query and returns the raw NDJSON lines.
func postStream(t *testing.T, ts *httptest.Server, req QueryRequest) (int, []json.RawMessage) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/query?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []json.RawMessage
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		lines = append(lines, json.RawMessage(append([]byte(nil), sc.Bytes()...)))
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read stream: %v", err)
	}
	return resp.StatusCode, lines
}

// TestStreamEndpoint: ?stream=1 produces a header line, batch lines and
// a done trailer whose rows match the buffered JSON path exactly.
func TestStreamEndpoint(t *testing.T) {
	_, ts := newBigTestServer(t, Config{}, 5000)
	const q = `SELECT k, v, tag FROM big WHERE k < 3000 ORDER BY k`

	var buffered QueryResponse
	if code := postQuery(t, ts, QueryRequest{SQL: q}, &buffered); code != http.StatusOK {
		t.Fatalf("buffered status %d", code)
	}

	code, lines := postStream(t, ts, QueryRequest{SQL: q})
	if code != http.StatusOK {
		t.Fatalf("stream status %d", code)
	}
	if len(lines) < 3 {
		t.Fatalf("stream produced %d lines, want header+batches+trailer", len(lines))
	}
	var hdr StreamHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		t.Fatal(err)
	}
	if len(hdr.Columns) != 3 || hdr.Columns[0] != "k" {
		t.Fatalf("header columns %v", hdr.Columns)
	}
	var trailer StreamTrailer
	if err := json.Unmarshal(lines[len(lines)-1], &trailer); err != nil {
		t.Fatal(err)
	}
	if !trailer.Done || trailer.RowsTotal != 3000 {
		t.Fatalf("trailer %+v", trailer)
	}
	var streamed [][]any
	for _, ln := range lines[1 : len(lines)-1] {
		var batch StreamBatch
		if err := json.Unmarshal(ln, &batch); err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, batch.Rows...)
	}
	if len(streamed) != len(buffered.Rows) {
		t.Fatalf("streamed %d rows, buffered %d", len(streamed), len(buffered.Rows))
	}
	for i := range streamed {
		if fmt.Sprint(streamed[i]) != fmt.Sprint(buffered.Rows[i]) {
			t.Fatalf("row %d differs: stream %v vs buffered %v", i, streamed[i], buffered.Rows[i])
		}
	}
	// Multiple batch lines prove the response was chunked per vector.
	if len(lines)-2 < 2 {
		t.Fatalf("expected ≥2 batch lines for 3000 rows, got %d", len(lines)-2)
	}
}

// TestStreamRejectsNonSelect: DML and explain cannot stream.
func TestStreamRejectsNonSelect(t *testing.T) {
	_, ts := newBigTestServer(t, Config{}, 10)
	code, _ := postStream(t, ts, QueryRequest{SQL: `INSERT INTO big VALUES (1, 1.0, 'q')`})
	if code != http.StatusBadRequest {
		t.Fatalf("DML stream: status %d, want 400", code)
	}
	code, _ = postStream(t, ts, QueryRequest{SQL: `SELECT k FROM big`, Explain: true})
	if code != http.StatusBadRequest {
		t.Fatalf("explain stream: status %d, want 400", code)
	}
}

// TestStreamTimeoutMidFlight: a streaming SELECT that exceeds its
// deadline ends with an error line (code timeout) instead of a done
// trailer, and the admission slot frees promptly.
func TestStreamTimeoutMidFlight(t *testing.T) {
	s, ts := newBigTestServer(t, Config{MaxConcurrent: 1}, 1_500_000)
	code, lines := postStream(t, ts, QueryRequest{
		SQL:       `SELECT k, v, tag FROM big ORDER BY tag, v`,
		TimeoutMs: 150,
	})
	// Headers were sent before the deadline hit, so the status is 200;
	// the failure travels in-band.
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(lines) == 0 {
		t.Fatal("empty stream")
	}
	var errLine ErrorResponse
	if err := json.Unmarshal(lines[len(lines)-1], &errLine); err != nil || errLine.Error.Code == "" {
		t.Fatalf("last line is not an error: %s", lines[len(lines)-1])
	}
	if errLine.Error.Code != "timeout" {
		t.Fatalf("error code %q, want timeout", errLine.Error.Code)
	}
	waitForIdleAdmission(t, s, 5*time.Second)
}

// TestTimeoutFreesAdmissionSlot is the abandoned-worker regression
// test: before streaming cursors, a timed-out statement kept its
// admission slot until it finished on its own; now the request context
// cancels the statement, so capacity must recover almost immediately
// and a follow-up query must get the slot.
func TestTimeoutFreesAdmissionSlot(t *testing.T) {
	s, ts := newBigTestServer(t, Config{MaxConcurrent: 1, MaxQueue: -1}, 1_500_000)

	var got ErrorResponse
	code := postQuery(t, ts, QueryRequest{
		SQL:       `SELECT k, v, tag FROM big ORDER BY tag, v`,
		TimeoutMs: 150,
	}, &got)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("slow query status %d, want 504", code)
	}

	// The canceled statement must hand back its slot well before the
	// sort would have finished naturally (tens of seconds for 1.5M rows
	// under -race).
	waitForIdleAdmission(t, s, 5*time.Second)

	// And the capacity is genuinely reusable: with MaxConcurrent=1 and
	// no waiting room, this 429s if the slot leaked.
	var ok QueryResponse
	code = postQuery(t, ts, QueryRequest{SQL: `SELECT COUNT(*) n FROM big WHERE k < 100`}, &ok)
	if code != http.StatusOK {
		t.Fatalf("follow-up query status %d, want 200 (slot leaked?)", code)
	}
	if len(ok.Rows) != 1 {
		t.Fatalf("follow-up rows %v", ok.Rows)
	}
}

// TestStreamStalledClientFreesSlot: a client that stops reading its
// socket (without closing it) must not pin the admission slot and the
// DB read lock forever — the per-write deadline (QueryTimeout) fails
// the stalled write, closing the cursor. The request context never
// fires here (the conn stays open), so only the write deadline saves
// the slot.
func TestStreamStalledClientFreesSlot(t *testing.T) {
	s, ts := newBigTestServer(t, Config{MaxConcurrent: 1, MaxQueue: -1, QueryTimeout: time.Second}, 400_000)

	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	body := `{"sql":"SELECT k, v, tag FROM big"}`
	fmt.Fprintf(conn, "POST /v1/query?stream=1 HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
		len(body), body)
	// Read just the response head, then stall: never read again, never
	// close. The server's writes back up once the socket buffers fill.
	buf := make([]byte, 1024)
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}

	// Within QueryTimeout (+margin) the blocked write must fail and the
	// slot must free; without write deadlines this hangs until TCP
	// keepalive gives up (minutes+).
	waitForIdleAdmission(t, s, 10*time.Second)

	// The engine is usable again (slot and read lock both released).
	var ok QueryResponse
	if code := postQuery(t, ts, QueryRequest{SQL: `SELECT COUNT(*) n FROM big WHERE k < 10`}, &ok); code != http.StatusOK {
		t.Fatalf("follow-up status %d", code)
	}
}

// waitForIdleAdmission polls the admission snapshot until no statement
// holds a slot.
func waitForIdleAdmission(t *testing.T, s *Server, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		st := s.adm.snapshot()
		if st.InFlight == 0 && st.Waiting == 0 {
			return
		}
		if time.Now().After(end) {
			t.Fatalf("admission never drained: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
