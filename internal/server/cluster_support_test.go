package server

// Tests for the server's cluster-facing satellites: the /v1/health
// probe, the /v1/load bulk-ingest endpoint, drain-mode refusal, and the
// typed error_kind field on the streaming error trailer.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestHealthEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Name: "shard0-a"})

	resp, err := http.Get(ts.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" {
		t.Fatalf("status = %q, want ok", hr.Status)
	}
	if hr.Name != "shard0-a" {
		t.Fatalf("name = %q, want shard0-a", hr.Name)
	}

	s.BeginDrain()
	resp2, err := http.Get(ts.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var hr2 HealthResponse
	if err := json.NewDecoder(resp2.Body).Decode(&hr2); err != nil {
		t.Fatal(err)
	}
	if hr2.Status != "draining" {
		t.Fatalf("status after BeginDrain = %q, want draining", hr2.Status)
	}
}

func TestLoadEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code := postQuery(t, ts, QueryRequest{SQL: `CREATE TABLE pts (id BIGINT, x DOUBLE, label VARCHAR, day DATE)`}, nil); code != http.StatusOK {
		t.Fatalf("create status %d", code)
	}

	csv := "1,1.5,alpha,2024-01-02\n2,2.5,beta,2024-01-03\n"
	resp, err := http.Post(ts.URL+"/v1/load?table=pts", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load status = %d", resp.StatusCode)
	}
	var lr LoadResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	if lr.RowsLoaded != 2 {
		t.Fatalf("rows_loaded = %d, want 2", lr.RowsLoaded)
	}
	var qr QueryResponse
	if code := postQuery(t, ts, QueryRequest{SQL: `SELECT COUNT(*) c FROM pts`}, &qr); code != http.StatusOK {
		t.Fatalf("count status %d", code)
	}
	if n, _ := qr.Rows[0][0].(float64); int(n) != 2 {
		t.Fatalf("count after load = %v", qr.Rows[0][0])
	}

	// header=true (any strconv.ParseBool form, not just header=1) skips
	// the header record instead of rejecting it as data.
	withHeader := "id,x,label,day\n3,3.5,gamma,2024-01-04\n"
	resp3, err := http.Post(ts.URL+"/v1/load?table=pts&header=true", "text/csv", strings.NewReader(withHeader))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var lr3 LoadResponse
	if err := json.NewDecoder(resp3.Body).Decode(&lr3); err != nil {
		t.Fatal(err)
	}
	if resp3.StatusCode != http.StatusOK || lr3.RowsLoaded != 1 {
		t.Fatalf("load header=true: status %d rows %d, want 200/1", resp3.StatusCode, lr3.RowsLoaded)
	}

	// Unknown table: 404, not 400.
	resp2, err := http.Post(ts.URL+"/v1/load?table=nope", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("load unknown table status = %d, want 404", resp2.StatusCode)
	}
}

func TestDrainRefusesNewStatements(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.BeginDrain()

	body, _ := json.Marshal(QueryRequest{SQL: "SELECT k FROM kv"})
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query while draining = %d, want 503", resp.StatusCode)
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != "draining" {
		t.Fatalf("error code = %q, want draining", er.Error.Code)
	}

	resp2, err := http.Post(ts.URL+"/v1/load?table=kv", "text/csv", strings.NewReader("9,z\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("load while draining = %d, want 503", resp2.StatusCode)
	}
}

// TestDrainLetsInFlightStreamFinish pins the drain contract a cluster
// depends on: a streaming cursor opened before BeginDrain runs to
// completion (done trailer and all) even though new statements are
// already being refused.
func TestDrainLetsInFlightStreamFinish(t *testing.T) {
	s, ts := newBigTestServer(t, Config{}, 20000)

	body, _ := json.Marshal(QueryRequest{SQL: "SELECT k, v FROM big"})
	resp, err := http.Post(ts.URL+"/v1/query?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}

	// The stream is open; drain now, then read it to the end.
	s.BeginDrain()
	dec := json.NewDecoder(resp.Body)
	var sawDone bool
	var rows int64
	for {
		var line struct {
			Rows [][]any    `json:"rows"`
			Done bool       `json:"done"`
			Err  *ErrorBody `json:"error"`
		}
		if err := dec.Decode(&line); err != nil {
			break
		}
		rows += int64(len(line.Rows))
		if line.Err != nil {
			t.Fatalf("in-flight stream errored during drain: %+v", line.Err)
		}
		if line.Done {
			sawDone = true
			break
		}
	}
	if !sawDone {
		t.Fatal("in-flight stream truncated by drain")
	}
	if rows != 20000 {
		t.Fatalf("rows = %d, want 20000", rows)
	}
}

// TestStreamTrailerErrorKindTimeout pins the typed trailer end to end:
// a statement that exceeds its deadline mid-stream reports
// error_kind "timeout" on the trailer line.
func TestStreamTrailerErrorKindTimeout(t *testing.T) {
	_, ts := newBigTestServer(t, Config{QueryTimeout: 50 * time.Millisecond}, 400000)

	// A sort forces full materialization before the first batch, so the
	// deadline reliably expires while the cursor is executing.
	status, lines := postStream(t, ts, QueryRequest{SQL: "SELECT k, v FROM big ORDER BY v DESC"})
	if status != http.StatusOK {
		t.Fatalf("status = %d (timeout must surface as trailer, not HTTP status)", status)
	}
	if len(lines) == 0 {
		t.Fatal("no NDJSON lines")
	}
	var trailer StreamErrorTrailer
	if err := json.Unmarshal(lines[len(lines)-1], &trailer); err != nil {
		t.Fatal(err)
	}
	if trailer.Error.Message == "" {
		t.Fatalf("last line is not an error trailer: %s", lines[len(lines)-1])
	}
	if trailer.Kind != "timeout" {
		t.Fatalf("error_kind = %q, want timeout (trailer: %s)", trailer.Kind, lines[len(lines)-1])
	}
}

func TestErrorKindClassification(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{context.DeadlineExceeded, "timeout"},
		{fmt.Errorf("wrap: %w", context.DeadlineExceeded), "timeout"},
		{context.Canceled, "canceled"},
		{fmt.Errorf("wrap: %w", context.Canceled), "canceled"},
		{errors.New("vectorwise: unknown column"), "query"},
	}
	for _, c := range cases {
		if got := errorKind(c.err); got != c.want {
			t.Errorf("errorKind(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}
