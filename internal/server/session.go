package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	vectorwise "vectorwise"
)

// Session is one client session. Sessions carry client identity across
// requests: per-session counters for observability, an idle TTL so
// abandoned clients are reaped, and named prepared statements (POST
// /v1/prepare) so a client prepares once and executes by name with
// bound parameters. (Per-session transactions layer on top of this in a
// later PR; the engine commits per statement today.)
type Session struct {
	ID      string    `json:"id"`
	Created time.Time `json:"created"`

	mu       sync.Mutex
	lastUsed time.Time
	queries  int64
	stmts    map[string]*vectorwise.Stmt
}

// setStmt registers (or replaces) a named prepared statement. The cap
// on new names is enforced under the same lock hold as the insert, so
// concurrent prepares cannot overshoot it; it reports whether the
// statement was stored.
func (s *Session) setStmt(name string, st *vectorwise.Stmt, maxStmts int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stmts == nil {
		s.stmts = make(map[string]*vectorwise.Stmt)
	}
	if _, replacing := s.stmts[name]; !replacing && len(s.stmts) >= maxStmts {
		return false
	}
	s.stmts[name] = st
	return true
}

// stmt resolves a named prepared statement.
func (s *Session) stmt(name string) (*vectorwise.Stmt, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.stmts[name]
	return st, ok
}

// removeStmt deallocates a named statement, reporting whether it existed.
func (s *Session) removeStmt(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.stmts[name]; !ok {
		return false
	}
	delete(s.stmts, name)
	return true
}

// touch marks the session used now and bumps its statement count.
func (s *Session) touch(now time.Time) {
	s.mu.Lock()
	s.lastUsed = now
	s.queries++
	s.mu.Unlock()
}

// idleSince returns the last-used time.
func (s *Session) idleSince() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastUsed
}

// Queries returns the number of statements the session has issued.
func (s *Session) Queries() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queries
}

// sessionTable is the concurrency-safe id → session map.
type sessionTable struct {
	ttl time.Duration

	mu       sync.Mutex
	sessions map[string]*Session
}

func newSessionTable(ttl time.Duration) *sessionTable {
	return &sessionTable{ttl: ttl, sessions: make(map[string]*Session)}
}

// create registers a fresh session with a random 128-bit id.
func (t *sessionTable) create(now time.Time) *Session {
	var raw [16]byte
	// crypto/rand.Read never returns an error (it aborts the program
	// on entropy failure as of Go 1.24); a panic here beats silently
	// degrading the session-ID space.
	if _, err := rand.Read(raw[:]); err != nil {
		panic(err)
	}
	s := &Session{ID: hex.EncodeToString(raw[:]), Created: now, lastUsed: now}
	t.mu.Lock()
	t.sessions[s.ID] = s
	t.mu.Unlock()
	return s
}

// get looks up a live session, expiring it inline when its idle TTL
// has lapsed (the background sweep is garbage collection only, so
// expiry does not depend on reaper timing).
func (t *sessionTable) get(id string) (*Session, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sessions[id]
	if !ok {
		return nil, fmt.Errorf("server: unknown or expired session %q", id)
	}
	if t.ttl > 0 && s.idleSince().Before(time.Now().Add(-t.ttl)) {
		delete(t.sessions, id)
		return nil, fmt.Errorf("server: unknown or expired session %q", id)
	}
	return s, nil
}

// remove deletes a session, reporting whether it existed.
func (t *sessionTable) remove(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.sessions[id]; !ok {
		return false
	}
	delete(t.sessions, id)
	return true
}

// sweep expires sessions idle longer than the TTL and returns how many
// it removed. A ttl <= 0 disables expiry.
func (t *sessionTable) sweep(now time.Time) int {
	if t.ttl <= 0 {
		return 0
	}
	cutoff := now.Add(-t.ttl)
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int
	for id, s := range t.sessions {
		if s.idleSince().Before(cutoff) {
			delete(t.sessions, id)
			n++
		}
	}
	return n
}

// count returns the number of live sessions.
func (t *sessionTable) count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.sessions)
}
