// Package plancache is the versioned statement cache that amortizes the
// SQL front end away on repeated statements: a bounded LRU mapping
// (normalized SQL, schema epoch, parallelism) to a compiled artifact —
// an optimized plan template for SELECTs, a parsed AST for DML. The
// Vectorwise argument is that per-query overheads must be amortized so
// execution runs at hardware speed; for a served workload of short
// parametrized statements the dominant overhead is planning itself,
// which this cache removes from the hot path.
//
// Invalidation is structural, not best-effort: the catalog's schema
// epoch is part of the key, so after DDL, a checkpoint, or a statistics
// refresh, every stale plan simply stops being reachable and ages out of
// the LRU. There is no scan-and-purge race to get wrong.
package plancache

import (
	"container/list"
	"sync"

	"vectorwise/internal/sql"
)

// Key identifies one cached compilation.
type Key struct {
	// SQL is the normalized statement text (see Normalize).
	SQL string
	// Epoch is the catalog schema epoch the artifact was built under.
	Epoch uint64
	// Parallelism is the worker target baked into the plan by the
	// parallel rewriter.
	Parallelism int
}

// Stats is a counter snapshot, exposed on the server's /v1/stats.
type Stats struct {
	// Hits counts lookups served from the cache.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that had to plan.
	Misses uint64 `json:"misses"`
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64 `json:"evictions"`
	// Entries is the current entry count; Capacity the bound.
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
}

type item struct {
	key Key
	val any
}

// Cache is a concurrency-safe bounded LRU. A capacity of 0 disables
// caching (every Get misses, Put is a no-op) — useful for measuring the
// uncached path.
type Cache struct {
	mu        sync.Mutex
	cap       int
	lru       *list.List // front = most recent; elements hold *item
	items     map[Key]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

// New creates a cache bounded to capacity entries.
func New(capacity int) *Cache {
	if capacity < 0 {
		capacity = 0
	}
	return &Cache{cap: capacity, lru: list.New(), items: make(map[Key]*list.Element)}
}

// Get returns the cached artifact for k, marking it most recently used.
func (c *Cache) Get(k Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*item).val, true
}

// Peek is Get without recording a miss: a hit counts (and refreshes
// recency) but an absence is silent. Pre-admission lookups use it so a
// cold statement's one real planning miss is counted once, by the path
// that actually compiles it.
func (c *Cache) Peek(k Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*item).val, true
}

// Put inserts (or replaces) the artifact for k, evicting the least
// recently used entry when the cache is full.
func (c *Cache) Put(k Key, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap == 0 {
		return
	}
	if el, ok := c.items[k]; ok {
		el.Value.(*item).val = v
		c.lru.MoveToFront(el)
		return
	}
	c.items[k] = c.lru.PushFront(&item{key: k, val: v})
	c.evictLocked()
}

// Resize changes the capacity, evicting down to the new bound. A new
// capacity of 0 empties and disables the cache.
func (c *Cache) Resize(capacity int) {
	if capacity < 0 {
		capacity = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = capacity
	c.evictLocked()
}

func (c *Cache) evictLocked() {
	for c.lru.Len() > c.cap {
		el := c.lru.Back()
		c.lru.Remove(el)
		delete(c.items, el.Value.(*item).key)
		c.evictions++
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.lru.Len(),
		Capacity:  c.cap,
	}
}

// Normalize canonicalizes statement text for cache keying. It rides the
// SQL front end's lexer: one token-stream pass that lower-cases keywords
// and identifiers, strips comments, collapses whitespace, folds `!=` to
// `<>` and drops semicolons — so `SELECT  V FROM T;` and `select v from
// t` share one entry. String literals are preserved byte for byte,
// escaped quotes included; unlexable text keys as itself.
func Normalize(text string) string {
	return sql.Normalize(text)
}
