package plancache

import (
	"fmt"
	"testing"
)

func TestGetPutLRU(t *testing.T) {
	c := New(2)
	k1 := Key{SQL: "select 1", Epoch: 0}
	k2 := Key{SQL: "select 2", Epoch: 0}
	k3 := Key{SQL: "select 3", Epoch: 0}

	if _, ok := c.Get(k1); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(k1, "one")
	c.Put(k2, "two")
	if v, ok := c.Get(k1); !ok || v.(string) != "one" {
		t.Fatalf("k1: %v %v", v, ok)
	}
	// k2 is now least recently used; inserting k3 evicts it.
	c.Put(k3, "three")
	if _, ok := c.Get(k2); ok {
		t.Fatal("k2 survived eviction")
	}
	if _, ok := c.Get(k1); !ok {
		t.Fatal("k1 evicted out of LRU order")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Capacity != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("hit/miss: %+v", st)
	}
}

func TestEpochPartitionsKeys(t *testing.T) {
	c := New(8)
	c.Put(Key{SQL: "select v from t", Epoch: 1}, "plan@1")
	if _, ok := c.Get(Key{SQL: "select v from t", Epoch: 2}); ok {
		t.Fatal("plan cached under epoch 1 reachable from epoch 2")
	}
	if v, ok := c.Get(Key{SQL: "select v from t", Epoch: 1}); !ok || v.(string) != "plan@1" {
		t.Fatal("same-epoch lookup missed")
	}
}

func TestZeroCapacityDisables(t *testing.T) {
	c := New(0)
	k := Key{SQL: "select 1"}
	c.Put(k, "x")
	if _, ok := c.Get(k); ok {
		t.Fatal("disabled cache stored an entry")
	}
}

func TestResize(t *testing.T) {
	c := New(4)
	for i := 0; i < 4; i++ {
		c.Put(Key{SQL: fmt.Sprintf("q%d", i)}, i)
	}
	c.Resize(1)
	st := c.Stats()
	if st.Entries != 1 || st.Capacity != 1 || st.Evictions != 3 {
		t.Fatalf("after shrink: %+v", st)
	}
	// The survivor is the most recently used entry.
	if _, ok := c.Get(Key{SQL: "q3"}); !ok {
		t.Fatal("most recent entry evicted by resize")
	}
	c.Resize(0)
	if c.Stats().Entries != 0 {
		t.Fatal("resize(0) did not empty the cache")
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT  V FROM T;", "select v from t"},
		{"select v\n\tfrom t", "select v from t"},
		{"select 'A  B' from t", "select 'A  B' from t"},
		{"select 'it''s  ok' from t", "select 'it''s  ok' from t"},
		{"select v -- trailing comment\nfrom t", "select v from t"},
		{"  select 1  ", "select 1"},
		{"select v from t where k = ?", "select v from t where k = ?"},
		{"SELECT v FROM t WHERE k = $1", "select v from t where k = $1"},
	}
	for _, tc := range cases {
		if got := Normalize(tc.in); got != tc.want {
			t.Errorf("Normalize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	if Normalize("SELECT  V FROM T;") != Normalize("select v from t") {
		t.Fatal("equivalent statements normalize differently")
	}
}
