// Set-operation execution: UNION / UNION ALL / EXCEPT / INTERSECT run
// through the full front end onto the vectorized engine. Expected rows
// are computed in Go from the two branches' own results, which pins the
// duplicate-eliminating group-by (an AggNode with zero aggregates) and
// the all-column semi/anti joins the planner lowers set operations to.
package enginetest

import (
	"fmt"
	"testing"

	"vectorwise/internal/testutil"
	"vectorwise/internal/vtypes"
)

func TestSetOpExecution(t *testing.T) {
	cat := tpchFixture(t)
	const left = `SELECT c_custkey FROM customer WHERE c_custkey <= 40`
	const right = `SELECT o_custkey FROM orders WHERE o_custkey <= 20`
	lrows := collectVectorized(t, cat, planSQL(t, cat, left, 1))
	rrows := collectVectorized(t, cat, planSQL(t, cat, right, 1))
	if len(lrows) == 0 || len(rrows) == 0 {
		t.Fatalf("branch queries returned %d and %d rows", len(lrows), len(rrows))
	}
	keys := func(rows []vtypes.Row) map[int64]bool {
		m := map[int64]bool{}
		for _, r := range rows {
			m[r[0].I64] = true
		}
		return m
	}
	lset, rset := keys(lrows), keys(rrows)
	distinct := func(include func(k int64) bool, sets ...map[int64]bool) []vtypes.Row {
		seen := map[int64]bool{}
		var out []vtypes.Row
		for _, s := range sets {
			for k := range s {
				if !seen[k] && include(k) {
					seen[k] = true
					out = append(out, vtypes.Row{vtypes.I64Value(k)})
				}
			}
		}
		return out
	}
	cases := []struct {
		op   string
		want []vtypes.Row
	}{
		{"UNION", distinct(func(int64) bool { return true }, lset, rset)},
		{"INTERSECT", distinct(func(k int64) bool { return rset[k] }, lset)},
		{"EXCEPT", distinct(func(k int64) bool { return !rset[k] }, lset)},
	}
	for _, tc := range cases {
		if len(tc.want) == 0 {
			t.Fatalf("%s: expected result is empty (fixture too small?)", tc.op)
		}
		for _, par := range []int{1, 4} {
			q := fmt.Sprintf("%s %s %s", left, tc.op, right)
			got := collectVectorized(t, cat, planSQL(t, cat, q, par))
			testutil.MatchRows(t, fmt.Sprintf("%s/par=%d", tc.op, par), tc.want, got)
		}
	}
	// UNION ALL keeps duplicates: exactly both branches concatenated.
	all := append(append([]vtypes.Row{}, lrows...), rrows...)
	got := collectVectorized(t, cat, planSQL(t, cat, left+" UNION ALL "+right, 1))
	testutil.MatchRows(t, "UNION ALL", all, got)
}
