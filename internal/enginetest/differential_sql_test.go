// SQL-vs-algebra differential suite: every TPC-H query of the suite is
// planned from its SQL text (lexer → parser → planner → rewriter) and
// must produce results row-identical to the hand-built algebra plan of
// the same query on the same catalog — serially and under the parallel
// rewrite. This pins the whole SQL front end to the semantics the
// paper's benchmark queries were written against.
package enginetest

import (
	"sync"
	"testing"

	"vectorwise/internal/algebra"
	"vectorwise/internal/catalog"
	"vectorwise/internal/core"
	"vectorwise/internal/rewriter"
	"vectorwise/internal/sql"
	"vectorwise/internal/testutil"
	"vectorwise/internal/tpch"
	"vectorwise/internal/vtypes"
	"vectorwise/internal/xcompile"
)

// diffSF keeps the fixture fast while leaving every query with matching
// rows (Q10's LIMIT 20 still overflows its group count, etc.).
const diffSF = 0.01

var (
	tpchOnce sync.Once
	tpchC    *catalog.Catalog
	tpchErr  error
)

func tpchFixture(t *testing.T) *catalog.Catalog {
	t.Helper()
	tpchOnce.Do(func() {
		tpchC, tpchErr = tpch.Generate(diffSF, 0)
	})
	if tpchErr != nil {
		t.Fatalf("generate: %v", tpchErr)
	}
	return tpchC
}

// planSQL lowers one suite query's SQL text through the real front end.
func planSQL(t *testing.T, cat *catalog.Catalog, text string, parallel int) algebra.Node {
	t.Helper()
	stmt, err := sql.Parse(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p := &sql.Planner{Cat: cat}
	plan, err := p.PlanQuery(stmt.AST)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	plan = rewriter.SimplifyPlan(plan)
	if parallel > 1 {
		plan = rewriter.Parallelize(plan, cat, parallel)
	}
	return plan
}

func collectVectorized(t *testing.T, cat *catalog.Catalog, plan algebra.Node) []vtypes.Row {
	t.Helper()
	op, err := xcompile.Compile(plan, cat, xcompile.Options{})
	if err != nil {
		t.Fatalf("xcompile: %v", err)
	}
	rows, err := core.Collect(op)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	return rows
}

func TestDifferentialSQLvsAlgebra(t *testing.T) {
	cat := tpchFixture(t)
	byName := map[string]func() algebra.Node{}
	for _, q := range tpch.Suite() {
		byName[q.Name] = q.Build
	}
	for _, sq := range tpch.SQLSuite() {
		sq := sq
		t.Run(sq.Name, func(t *testing.T) {
			build, ok := byName[sq.Name]
			if !ok {
				t.Fatalf("no hand-built plan for %s", sq.Name)
			}
			handRows := collectVectorized(t, cat, rewriter.SimplifyPlan(build()))
			if len(handRows) == 0 {
				t.Fatalf("%s: hand-built plan returned no rows (fixture too small?)", sq.Name)
			}
			serial := collectVectorized(t, cat, planSQL(t, cat, sq.SQL, 1))
			testutil.MatchRows(t, sq.Name+"/serial", handRows, serial)
			for _, par := range []int{2, 4} {
				prows := collectVectorized(t, cat, planSQL(t, cat, sq.SQL, par))
				testutil.MatchRows(t, sq.Name+"/parallel", handRows, prows)
			}
		})
	}
}
