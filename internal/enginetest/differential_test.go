// Package enginetest cross-checks the three execution engines — the
// vectorized X100 core, the tuple-at-a-time Volcano baseline, and the
// column-at-a-time materializing baseline — on identical algebra plans.
// Any divergence is a bug in one of them; this is both our correctness
// net and the foundation of the paper's engine comparisons (same plan,
// same storage, different execution discipline).
package enginetest

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"vectorwise/internal/algebra"
	"vectorwise/internal/catalog"
	"vectorwise/internal/core"
	"vectorwise/internal/matengine"
	"vectorwise/internal/pdt"
	"vectorwise/internal/storage"
	"vectorwise/internal/tupleengine"
	"vectorwise/internal/vtypes"
	"vectorwise/internal/xcompile"
)

// fixture builds a catalog with two related tables.
func fixture(t testing.TB, rows int) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()

	items := vtypes.NewSchema(
		vtypes.Column{Name: "id", Kind: vtypes.KindI64},
		vtypes.Column{Name: "grp", Kind: vtypes.KindI64},
		vtypes.Column{Name: "price", Kind: vtypes.KindF64},
		vtypes.Column{Name: "qty", Kind: vtypes.KindI64},
		vtypes.Column{Name: "mode", Kind: vtypes.KindStr},
		vtypes.Column{Name: "shipped", Kind: vtypes.KindDate},
	)
	ib := storage.NewBuilder("items", items, 200)
	modes := []string{"RAIL", "AIR", "TRUCK", "SHIP"}
	rng := rand.New(rand.NewSource(11))
	base := vtypes.MustParseDate("1995-01-01")
	for i := 0; i < rows; i++ {
		if err := ib.AppendRow(vtypes.Row{
			vtypes.I64Value(int64(i)),
			vtypes.I64Value(rng.Int63n(20)),
			vtypes.F64Value(float64(rng.Intn(10000)) / 100),
			vtypes.I64Value(rng.Int63n(50) + 1),
			vtypes.StrValue(modes[rng.Intn(len(modes))]),
			vtypes.DateValue(base + rng.Int63n(1000)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	itbl, err := ib.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cat.Put(itbl)

	grps := vtypes.NewSchema(
		vtypes.Column{Name: "gid", Kind: vtypes.KindI64},
		vtypes.Column{Name: "gname", Kind: vtypes.KindStr},
	)
	gb := storage.NewBuilder("grps", grps, 64)
	for i := 0; i < 15; i++ { // deliberately missing groups 15..19
		if err := gb.AppendRow(vtypes.Row{
			vtypes.I64Value(int64(i)), vtypes.StrValue(fmt.Sprintf("g-%02d", i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	gtbl, err := gb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cat.Put(gtbl)
	return cat
}

// runAll executes the plan on all three engines, returning sorted row
// renderings.
func runAll(t testing.TB, cat *catalog.Catalog, plan algebra.Node) (vec, tup, mat []string) {
	t.Helper()
	op, err := xcompile.Compile(plan, cat, xcompile.Options{})
	if err != nil {
		t.Fatalf("xcompile: %v", err)
	}
	vrows, err := core.Collect(op)
	if err != nil {
		t.Fatalf("vectorized run: %v", err)
	}
	trows, err := tupleengine.Run(plan, cat)
	if err != nil {
		t.Fatalf("tuple run: %v", err)
	}
	mrows, err := matengine.Run(plan, cat)
	if err != nil {
		t.Fatalf("materialized run: %v", err)
	}
	return render(vrows), render(trows), render(mrows)
}

// render canonicalizes rows: floats rounded to tolerate summation-order
// differences across engines.
func render(rows []vtypes.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		var parts []string
		for _, v := range r {
			if !v.Null && v.Kind == vtypes.KindF64 {
				parts = append(parts, fmt.Sprintf("%.6f", v.F64))
				continue
			}
			parts = append(parts, v.String())
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func expectEqual(t *testing.T, name string, vec, tup, mat []string) {
	t.Helper()
	if len(vec) != len(tup) || len(vec) != len(mat) {
		t.Fatalf("%s: row counts differ: vec=%d tuple=%d mat=%d", name, len(vec), len(tup), len(mat))
	}
	for i := range vec {
		if vec[i] != tup[i] {
			t.Fatalf("%s row %d: vectorized %q != tuple %q", name, i, vec[i], tup[i])
		}
		if vec[i] != mat[i] {
			t.Fatalf("%s row %d: vectorized %q != materialized %q", name, i, vec[i], mat[i])
		}
	}
}

func colRef(i int, k vtypes.Kind) algebra.Scalar { return &algebra.ColRef{Idx: i, K: k} }
func lit(v vtypes.Value) algebra.Scalar          { return &algebra.Lit{Val: v} }

func scanItems(cols ...int) *algebra.ScanNode {
	full := []vtypes.Column{
		{Name: "id", Kind: vtypes.KindI64},
		{Name: "grp", Kind: vtypes.KindI64},
		{Name: "price", Kind: vtypes.KindF64},
		{Name: "qty", Kind: vtypes.KindI64},
		{Name: "mode", Kind: vtypes.KindStr},
		{Name: "shipped", Kind: vtypes.KindDate},
	}
	var out []vtypes.Column
	for _, c := range cols {
		out = append(out, full[c])
	}
	return &algebra.ScanNode{Table: "items", Cols: cols, Out: &vtypes.Schema{Cols: out}}
}

func TestDifferentialFilterProject(t *testing.T) {
	cat := fixture(t, 2000)
	mul, err := algebra.NewArith(algebra.OpMul, colRef(1, vtypes.KindF64), colRef(2, vtypes.KindI64))
	if err != nil {
		t.Fatal(err)
	}
	plan := &algebra.ProjectNode{
		Input: &algebra.SelectNode{
			Input: scanItems(0, 2, 3, 4),
			Pred: &algebra.And{Preds: []algebra.Scalar{
				&algebra.Cmp{Op: algebra.CmpLt, L: colRef(1, vtypes.KindF64), R: lit(vtypes.F64Value(50))},
				&algebra.In{In: colRef(3, vtypes.KindStr), List: []vtypes.Value{vtypes.StrValue("RAIL"), vtypes.StrValue("AIR")}},
			}},
		},
		Exprs: []algebra.Scalar{colRef(0, vtypes.KindI64), mul},
		Names: []string{"id", "value"},
	}
	vec, tup, mat := runAll(t, cat, plan)
	expectEqual(t, "filter-project", vec, tup, mat)
}

func TestDifferentialAggregation(t *testing.T) {
	cat := fixture(t, 3000)
	plan := &algebra.AggNode{
		Input:   scanItems(1, 2, 3),
		GroupBy: []algebra.Scalar{colRef(0, vtypes.KindI64)},
		Aggs: []algebra.AggExpr{
			{Fn: algebra.AggSum, Arg: colRef(1, vtypes.KindF64)},
			{Fn: algebra.AggCountStar},
			{Fn: algebra.AggMin, Arg: colRef(2, vtypes.KindI64)},
			{Fn: algebra.AggMax, Arg: colRef(2, vtypes.KindI64)},
			{Fn: algebra.AggAvg, Arg: colRef(1, vtypes.KindF64)},
		},
		Names: []string{"grp", "total", "n", "minq", "maxq", "avgp"},
	}
	vec, tup, mat := runAll(t, cat, plan)
	expectEqual(t, "aggregate", vec, tup, mat)
}

func TestDifferentialJoins(t *testing.T) {
	cat := fixture(t, 1500)
	gscan := &algebra.ScanNode{Table: "grps", Cols: []int{0, 1},
		Out: vtypes.NewSchema(
			vtypes.Column{Name: "gid", Kind: vtypes.KindI64},
			vtypes.Column{Name: "gname", Kind: vtypes.KindStr})}
	for _, typ := range []algebra.JoinType{algebra.JoinInner, algebra.JoinLeftSemi, algebra.JoinLeftAnti, algebra.JoinLeftOuter} {
		plan := &algebra.JoinNode{
			Left:      scanItems(0, 1, 2),
			Right:     gscan,
			LeftKeys:  []algebra.Scalar{colRef(1, vtypes.KindI64)},
			RightKeys: []algebra.Scalar{colRef(0, vtypes.KindI64)},
			Type:      typ,
		}
		vec, tup, mat := runAll(t, cat, plan)
		expectEqual(t, "join-"+typ.String(), vec, tup, mat)
		if len(vec) == 0 {
			t.Fatalf("join %v produced no rows (fixture should)", typ)
		}
	}
}

func TestDifferentialSortLimit(t *testing.T) {
	cat := fixture(t, 800)
	plan := &algebra.LimitNode{
		N: 25,
		Input: &algebra.SortNode{
			Input: scanItems(0, 2, 4),
			Keys: []algebra.SortKey{
				{Expr: colRef(1, vtypes.KindF64), Desc: true},
				{Expr: colRef(0, vtypes.KindI64)},
			},
		},
	}
	// Sorted output: compare in order (not re-sorted), keys make it
	// deterministic.
	op, err := xcompile.Compile(plan, cat, xcompile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vrows, err := core.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	trows, err := tupleengine.Run(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	mrows, err := matengine.Run(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(vrows) != 25 || len(trows) != 25 || len(mrows) != 25 {
		t.Fatalf("limits: %d %d %d", len(vrows), len(trows), len(mrows))
	}
	for i := range vrows {
		for c := range vrows[i] {
			if !vrows[i][c].Equal(trows[i][c]) || !vrows[i][c].Equal(mrows[i][c]) {
				t.Fatalf("sorted row %d col %d differs: %v %v %v", i, c, vrows[i][c], trows[i][c], mrows[i][c])
			}
		}
	}
}

func TestDifferentialCaseLikeBetweenYear(t *testing.T) {
	cat := fixture(t, 1200)
	isAir, err := algebra.NewCase(
		&algebra.Like{In: colRef(2, vtypes.KindStr), Pattern: "A%"},
		colRef(1, vtypes.KindF64),
		lit(vtypes.F64Value(0)),
	)
	if err != nil {
		t.Fatal(err)
	}
	plan := &algebra.AggNode{
		Input: &algebra.SelectNode{
			Input: scanItems(0, 2, 4, 5),
			Pred: &algebra.Or{Preds: []algebra.Scalar{
				&algebra.Between{In: colRef(3, vtypes.KindDate),
					Lo: vtypes.DateValue(vtypes.MustParseDate("1995-06-01")),
					Hi: vtypes.DateValue(vtypes.MustParseDate("1996-06-01"))},
				&algebra.Cmp{Op: algebra.CmpEq, L: colRef(2, vtypes.KindStr), R: lit(vtypes.StrValue("SHIP"))},
			}},
		},
		GroupBy: []algebra.Scalar{&algebra.YearOf{In: colRef(3, vtypes.KindDate)}},
		Aggs: []algebra.AggExpr{
			{Fn: algebra.AggSum, Arg: isAir},
			{Fn: algebra.AggCountStar},
		},
		Names: []string{"year", "airsum", "n"},
	}
	vec, tup, mat := runAll(t, cat, plan)
	expectEqual(t, "case-like-between-year", vec, tup, mat)
}

func TestDifferentialUnionAll(t *testing.T) {
	cat := fixture(t, 1000)
	mk := func(lo, hi int) algebra.Node {
		s := scanItems(0, 1)
		s.PartLo, s.PartHi = lo, hi
		return s
	}
	plan := &algebra.AggNode{
		Input:   &algebra.UnionAllNode{Inputs: []algebra.Node{mk(0, 3), mk(3, 5)}},
		GroupBy: []algebra.Scalar{colRef(1, vtypes.KindI64)},
		Aggs:    []algebra.AggExpr{{Fn: algebra.AggCountStar}},
		Names:   []string{"grp", "n"},
	}
	vec, tup, mat := runAll(t, cat, plan)
	expectEqual(t, "union-all", vec, tup, mat)
}

func TestDifferentialWithPDTLayers(t *testing.T) {
	cat := fixture(t, 600)
	itbl, _, err := cat.Resolve("items")
	if err != nil {
		t.Fatal(err)
	}
	master := pdt.New(itbl.Schema(), itbl.Rows())
	if err := master.Delete(10); err != nil {
		t.Fatal(err)
	}
	if err := master.Modify(20, 2, vtypes.F64Value(123.45)); err != nil {
		t.Fatal(err)
	}
	if err := master.Append(vtypes.Row{
		vtypes.I64Value(9999), vtypes.I64Value(3), vtypes.F64Value(1.25),
		vtypes.I64Value(2), vtypes.StrValue("RAIL"), vtypes.DateValue(9000),
	}); err != nil {
		t.Fatal(err)
	}
	if err := cat.SetLayers("items", []*pdt.PDT{master}); err != nil {
		t.Fatal(err)
	}
	plan := &algebra.AggNode{
		Input:   scanItems(1, 2),
		GroupBy: []algebra.Scalar{colRef(0, vtypes.KindI64)},
		Aggs:    []algebra.AggExpr{{Fn: algebra.AggSum, Arg: colRef(1, vtypes.KindF64)}, {Fn: algebra.AggCountStar}},
		Names:   []string{"grp", "s", "n"},
	}
	vec, tup, mat := runAll(t, cat, plan)
	expectEqual(t, "pdt-layers", vec, tup, mat)
}

// TestDifferentialRandomPlans fuzzes simple select-project-aggregate
// plans across the engines.
func TestDifferentialRandomPlans(t *testing.T) {
	cat := fixture(t, 900)
	rng := rand.New(rand.NewSource(77))
	modes := []string{"RAIL", "AIR", "TRUCK", "SHIP"}
	for trial := 0; trial < 25; trial++ {
		var preds []algebra.Scalar
		if rng.Intn(2) == 0 {
			preds = append(preds, &algebra.Cmp{
				Op: algebra.CmpOp(rng.Intn(6)),
				L:  colRef(1, vtypes.KindF64),
				R:  lit(vtypes.F64Value(float64(rng.Intn(100)))),
			})
		}
		if rng.Intn(2) == 0 {
			preds = append(preds, &algebra.Cmp{
				Op: algebra.CmpOp(rng.Intn(6)),
				L:  colRef(2, vtypes.KindI64),
				R:  lit(vtypes.I64Value(rng.Int63n(50))),
			})
		}
		preds = append(preds, &algebra.Like{
			In:      colRef(3, vtypes.KindStr),
			Pattern: "%" + string(modes[rng.Intn(4)][0]) + "%",
			Negate:  rng.Intn(2) == 0,
		})
		var input algebra.Node = scanItems(0, 2, 3, 4)
		input = &algebra.SelectNode{Input: input, Pred: &algebra.And{Preds: preds}}
		plan := &algebra.AggNode{
			Input:   input,
			GroupBy: []algebra.Scalar{colRef(3, vtypes.KindStr)},
			Aggs: []algebra.AggExpr{
				{Fn: algebra.AggSum, Arg: colRef(2, vtypes.KindI64)},
				{Fn: algebra.AggCountStar},
			},
			Names: []string{"mode", "q", "n"},
		}
		vec, tup, mat := runAll(t, cat, plan)
		expectEqual(t, fmt.Sprintf("random-%d", trial), vec, tup, mat)
	}
}
