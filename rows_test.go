package vectorwise

import (
	"context"
	"errors"
	"testing"
	"time"
)

// rowsTestDB builds a DB with a single table of n rows for cursor
// tests, populated through the bulk columnar path so large fixtures
// stay fast under -race.
func rowsTestDB(t testing.TB, n int) *DB {
	t.Helper()
	db := OpenMemory()
	if _, err := db.Exec(`CREATE TABLE pts (k BIGINT, v DOUBLE, tag VARCHAR)`); err != nil {
		t.Fatal(err)
	}
	tags := []string{"a", "b", "c"}
	ks := make([]int64, n)
	vs := make([]float64, n)
	ts := make([]string, n)
	for i := 0; i < n; i++ {
		ks[i] = int64(i)
		vs[i] = float64(i%100) + 0.5
		ts[i] = tags[i%3]
	}
	if _, err := db.LoadBatch("pts", []any{ks, vs, ts}, nil); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestRowsMatchesQuery pins the cursor path row-identical to the
// collect-all path, via both the row-at-a-time (Next/Scan) and the
// columnar (NextBatch) consumers.
func TestRowsMatchesQuery(t *testing.T) {
	db := rowsTestDB(t, 2500)
	const q = `SELECT tag, COUNT(*) n, SUM(v) s FROM pts WHERE k < 2000 GROUP BY tag ORDER BY tag`
	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}

	// Row-at-a-time.
	rows, err := db.QueryContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if cols := rows.Columns(); len(cols) != 3 || cols[0] != "tag" || cols[1] != "n" {
		t.Fatalf("columns: %v", cols)
	}
	i := 0
	for rows.Next() {
		var tag string
		var n int64
		var s float64
		if err := rows.Scan(&tag, &n, &s); err != nil {
			t.Fatal(err)
		}
		want := res.Rows[i]
		if tag != want[0].Str || n != want[1].I64 || s != want[2].F64 {
			t.Fatalf("row %d: got (%s,%d,%g) want %v", i, tag, n, s, want)
		}
		i++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(res.Rows) {
		t.Fatalf("cursor yielded %d rows, Query %d", i, len(res.Rows))
	}

	// Columnar.
	rows2, err := db.QueryContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	defer rows2.Close()
	var got int
	for {
		b, err := rows2.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		for r := 0; r < b.N; r++ {
			want := res.Rows[got]
			row := b.Row(r)
			for c := range want {
				if want[c].Compare(row[c]) != 0 {
					t.Fatalf("batch row %d col %d: got %v want %v", got, c, row[c], want[c])
				}
			}
			got++
		}
	}
	if got != len(res.Rows) {
		t.Fatalf("NextBatch yielded %d rows, Query %d", got, len(res.Rows))
	}
}

// TestRowsSnapshotDoesNotBlockWriter: an open cursor pins an epoch
// snapshot, not a lock, so a concurrent Exec proceeds immediately —
// and the cursor still yields exactly the rows of its pinned epoch,
// unaffected by the commit. Run under -race in CI.
func TestRowsSnapshotDoesNotBlockWriter(t *testing.T) {
	const total = 3000
	db := rowsTestDB(t, total)
	rows, err := db.QueryContext(context.Background(), `SELECT k, v FROM pts`)
	if err != nil {
		t.Fatal(err)
	}
	pinned := rows.Epoch()
	first, err := rows.NextBatch()
	if err != nil {
		t.Fatal(err)
	}
	n := int64(first.N)

	execDone := make(chan error, 1)
	go func() {
		_, err := db.Exec(`INSERT INTO pts VALUES (999999, 1.5, 'z')`)
		execDone <- err
	}()
	select {
	case err := <-execDone:
		if err != nil {
			t.Fatalf("Exec with open cursor: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Exec blocked behind an open cursor (snapshot read not lock-free)")
	}
	if db.Epoch() == pinned {
		t.Fatal("commit did not advance the data epoch")
	}

	// The cursor keeps streaming its pinned epoch: the concurrent
	// insert must not appear, and the row count is exactly the
	// snapshot's.
	for {
		b, err := rows.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		for i := 0; i < b.N; i++ {
			if k := b.Vecs[0].I64[b.LiveIndex(i)]; k == 999999 {
				t.Fatal("cursor observed a row committed after its snapshot was pinned")
			}
		}
		n += int64(b.N)
	}
	if n != total {
		t.Fatalf("pinned cursor saw %d rows, want %d", n, total)
	}

	// A fresh cursor pins the new epoch and sees the insert.
	res, err := db.Query(`SELECT COUNT(*) FROM pts WHERE k = 999999`)
	if err != nil {
		t.Fatal(err)
	}
	if cnt := res.Rows[0][0].I64; cnt != 1 {
		t.Fatalf("new cursor: inserted row count = %d, want 1", cnt)
	}
}

// TestRowsMidScanCancellation: canceling the context stops the
// statement mid-flight — the cursor reports the context error, fewer
// rows than the full result were produced, and the read lock is
// released (a subsequent Exec proceeds).
func TestRowsMidScanCancellation(t *testing.T) {
	const total = 50000
	db := rowsTestDB(t, total)
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := db.QueryContext(ctx, `SELECT k, v, tag FROM pts`)
	if err != nil {
		t.Fatal(err)
	}
	var seen int
	b, err := rows.NextBatch()
	if err != nil {
		t.Fatal(err)
	}
	seen += b.N
	cancel()
	for {
		b, err := rows.NextBatch()
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			break
		}
		if b == nil {
			t.Fatal("scan ran to completion despite cancellation")
		}
		seen += b.N
	}
	if seen >= total {
		t.Fatalf("consumed all %d rows; cancellation did not stop the scan", seen)
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err: want context.Canceled, got %v", err)
	}
	// The cursor auto-closed on error: the write lock must be free.
	done := make(chan error, 1)
	go func() {
		_, err := db.Exec(`INSERT INTO pts VALUES (111111, 2.5, 'w')`)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write lock still held after canceled cursor")
	}
}

// TestRowsCloseSemantics: double Close is a no-op, and Scan/Next/
// NextBatch after Close fail cleanly.
func TestRowsCloseSemantics(t *testing.T) {
	db := rowsTestDB(t, 100)
	rows, err := db.QueryContext(context.Background(), `SELECT k FROM pts ORDER BY k`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("expected a first row")
	}
	var k int64
	if err := rows.Scan(&k); err != nil || k != 0 {
		t.Fatalf("scan: k=%d err=%v", k, err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if err := rows.Scan(&k); !errors.Is(err, ErrRowsClosed) {
		t.Fatalf("Scan after Close: want ErrRowsClosed, got %v", err)
	}
	if rows.Next() {
		t.Fatal("Next after Close returned true")
	}
	if _, err := rows.NextBatch(); !errors.Is(err, ErrRowsClosed) {
		t.Fatalf("NextBatch after Close: want ErrRowsClosed, got %v", err)
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("Err after clean Close: %v", err)
	}

	// Scan without Next is an error too.
	rows2, err := db.QueryContext(context.Background(), `SELECT k FROM pts`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows2.Close()
	if err := rows2.Scan(&k); err == nil {
		t.Fatal("Scan before Next should error")
	}
}

// TestRowsAutoCloseReleasesLock: fully draining a cursor (Next returns
// false) releases the read lock without an explicit Close.
func TestRowsAutoCloseReleasesLock(t *testing.T) {
	db := rowsTestDB(t, 500)
	rows, err := db.QueryContext(context.Background(), `SELECT k FROM pts`)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Fatalf("drained %d rows", n)
	}
	done := make(chan error, 1)
	go func() {
		_, err := db.Exec(`INSERT INTO pts VALUES (7777, 1.0, 'q')`)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drained cursor did not release the read lock")
	}
}

// TestRowsScanDate: DATE columns scan into *time.Time, and time.Time
// parameters bind to DATE predicates (no pre-formatted strings).
func TestRowsScanDate(t *testing.T) {
	db := OpenMemory()
	if _, err := db.Exec(`CREATE TABLE ev (name VARCHAR, day DATE)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO ev VALUES
		('early', DATE '1994-01-01'),
		('mid',   DATE '1994-06-15'),
		('late',  DATE '1995-03-02')`); err != nil {
		t.Fatal(err)
	}

	cut := time.Date(1994, 12, 31, 23, 0, 0, 0, time.UTC) // clock ignored: civil date binds
	stmt, err := db.Prepare(`SELECT name, day FROM ev WHERE day <= ? ORDER BY day`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := stmt.QueryContext(context.Background(), cut)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var names []string
	var last time.Time
	for rows.Next() {
		var name string
		var day time.Time
		if err := rows.Scan(&name, &day); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
		last = day
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "early" || names[1] != "mid" {
		t.Fatalf("date-bound predicate matched %v", names)
	}
	if want := time.Date(1994, 6, 15, 0, 0, 0, 0, time.UTC); !last.Equal(want) {
		t.Fatalf("scanned date %v, want %v", last, want)
	}

	// Mismatched destinations error instead of coercing: a DATE never
	// leaks as a raw day count, numbers never stringify silently.
	rows2, err := db.QueryContext(context.Background(), `SELECT name, day FROM ev ORDER BY day`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows2.Next() {
		t.Fatal("no row")
	}
	var i64 int64
	var s string
	if err := rows2.Scan(&s, &i64); err == nil {
		t.Fatal("scanning DATE into *int64 should error")
	}
	var f float64
	if err := rows2.Scan(&s, &f); err == nil {
		t.Fatal("scanning DATE into *float64 should error")
	}
	if err := rows2.Scan(&f, &s); err == nil {
		t.Fatal("scanning VARCHAR into *float64 should error")
	}
	// ...but DATE formats into *string.
	if err := rows2.Scan(&s, &s); err != nil {
		t.Fatal(err)
	}
	if s != "1994-01-01" {
		t.Fatalf("DATE into *string: %q", s)
	}
	// Close before the Exec below: an open cursor holds the read lock,
	// and Exec on the same goroutine would deadlock.
	if err := rows2.Close(); err != nil {
		t.Fatal(err)
	}

	// Exec path binds time.Time too.
	if _, err := db.ExecArgs(`INSERT INTO ev VALUES ('added', ?)`,
		time.Date(1996, 2, 29, 12, 30, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	res, err := db.QueryArgs(`SELECT name FROM ev WHERE day = ?`,
		time.Date(1996, 2, 29, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "added" {
		t.Fatalf("time.Time INSERT/lookup: %v", res.Rows)
	}
}

// TestQueryContextParallelPlan exercises the cursor over an exchange-
// parallelized plan: batches stream out of worker goroutines and
// cancellation joins them (run under -race).
func TestQueryContextParallelPlan(t *testing.T) {
	db := rowsTestDB(t, 30000)
	db.SetParallelism(4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := db.QueryContext(ctx, `SELECT tag, SUM(v) s FROM pts GROUP BY tag ORDER BY tag`)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("got %d groups, want 3", n)
	}

	// And a canceled parallel cursor must not leak workers or the lock.
	ctx2, cancel2 := context.WithCancel(context.Background())
	rows2, err := db.QueryContext(ctx2, `SELECT k, v FROM pts`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows2.NextBatch(); err != nil {
		t.Fatal(err)
	}
	cancel2()
	for {
		b, err := rows2.NextBatch()
		if err != nil || b == nil {
			break
		}
	}
	rows2.Close()
	if _, err := db.Exec(`INSERT INTO pts VALUES (1, 1.0, 'x')`); err != nil {
		t.Fatal(err)
	}
}

// TestRowsEarlyCloseAbortsStatement: Close on a partially consumed
// cursor aborts the statement instead of executing the remainder — the
// exchange producers of a parallel plan observe the internal cancel
// and a follow-up write acquires the lock promptly.
func TestRowsEarlyCloseAbortsStatement(t *testing.T) {
	db := rowsTestDB(t, 200000)
	db.SetParallelism(4)
	rows, err := db.QueryContext(context.Background(), `SELECT k, v, tag FROM pts`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.NextBatch(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	// A leaked statement would still hold the read lock here.
	done := make(chan error, 1)
	go func() {
		_, err := db.Exec(`INSERT INTO pts VALUES (999999, 1.0, 'z')`)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write blocked after early Close")
	}
}
