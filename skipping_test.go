package vectorwise

import (
	"context"
	"fmt"
	"testing"
	"time"

	"vectorwise/internal/storage"
	"vectorwise/internal/vtypes"
)

// buildClusteredDB registers an `events` table of rows sorted by id
// (and by date, which advances every 16 rows), split into many small
// row groups so min/max pruning has something to skip.
func buildClusteredDB(t testing.TB, rows, groupRows int) *DB {
	t.Helper()
	schema := vtypes.NewSchema(
		vtypes.Column{Name: "id", Kind: vtypes.KindI64},
		vtypes.Column{Name: "d", Kind: vtypes.KindDate},
		vtypes.Column{Name: "v", Kind: vtypes.KindF64},
	)
	base, err := vtypes.ParseDate("1994-01-01")
	if err != nil {
		t.Fatal(err)
	}
	b := storage.NewBuilder("events", schema, groupRows)
	for i := 0; i < rows; i++ {
		err := b.AppendRow(vtypes.Row{
			vtypes.I64Value(int64(i)),
			vtypes.DateValue(base + int64(i/16)),
			vtypes.F64Value(float64(i%97) + 0.25),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	tbl, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	db := OpenMemory()
	db.SetParallelism(1)
	db.RegisterTable(tbl)
	return db
}

// drainStats runs a parametrized statement through the plan-cache path
// and returns its rows plus the statement's own scan counters.
func drainStats(t *testing.T, db *DB, sql string, args ...any) ([]vtypes.Row, storage.ScanStatsSnapshot) {
	t.Helper()
	rows, err := db.QueryContext(context.Background(), sql, args...)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var out []vtypes.Row
	for {
		b, err := rows.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			return out, rows.ScanStats()
		}
		for i := 0; i < b.N; i++ {
			out = append(out, b.Row(i))
		}
	}
}

// The acceptance shape: a selective parametrized range scan over
// clustered data prunes row groups through the public prepared-
// statement path — on the cold plan and on a plan-cache hit, with the
// bounds resolved from each execution's own arguments.
func TestDataSkippingThroughQuery(t *testing.T) {
	db := buildClusteredDB(t, 10240, 512) // 20 groups
	const q = `SELECT id, v FROM events WHERE id BETWEEN ? AND ?`
	for rep := 0; rep < 2; rep++ { // cold, then plan-cache hit
		rows, st := drainStats(t, db, q, int64(9000), int64(9499))
		if len(rows) != 500 {
			t.Fatalf("rep %d: %d rows, want 500", rep, len(rows))
		}
		if st.GroupsPruned == 0 || st.GroupsScanned > 2 {
			t.Fatalf("rep %d: stats %+v, want most of 20 groups pruned", rep, st)
		}
	}
	if s := db.PlanCacheStats(); s.Hits == 0 {
		t.Fatalf("parametrized re-execution missed the plan cache: %+v", s)
	}
	// Different arguments re-derive the prune bounds: a full-range
	// probe prunes nothing and sees every row.
	rows, st := drainStats(t, db, q, int64(0), int64(10239))
	if len(rows) != 10240 || st.GroupsPruned != 0 {
		t.Fatalf("full range: %d rows, stats %+v", len(rows), st)
	}
	// Pruning off: same rows, all groups decompressed.
	db.SetDataSkipping(false)
	rows, st = drainStats(t, db, q, int64(9000), int64(9499))
	if len(rows) != 500 || st.GroupsPruned != 0 || st.GroupsScanned != 20 {
		t.Fatalf("skipping off: %d rows, stats %+v", len(rows), st)
	}
	// Cumulative counters surfaced at the DB level.
	if agg := db.ScanStats(); agg.GroupsPruned == 0 {
		t.Fatalf("DB cumulative stats missing prunes: %+v", agg)
	}
}

// A NULL bound in a pushed filter is never true (SQL three-valued
// logic): the compiled predicate and the prune function must agree on
// zero rows, whether data skipping is on or off.
func TestDataSkippingNullParam(t *testing.T) {
	db := buildClusteredDB(t, 2048, 256)
	for _, skip := range []bool{true, false} {
		db.SetDataSkipping(skip)
		res, err := db.QueryArgs(`SELECT id FROM events WHERE id > ?`, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 0 {
			t.Fatalf("skip=%v: x > NULL matched %d rows, want 0", skip, len(res.Rows))
		}
		res, err = db.QueryArgs(`SELECT id FROM events WHERE id BETWEEN ? AND ?`, nil, int64(10))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 0 {
			t.Fatalf("skip=%v: NULL between bound matched %d rows, want 0", skip, len(res.Rows))
		}
	}
}

// Literal predicates prune through plain DB.Query too, and EXPLAIN
// renders the extracted filters while ExplainAnalyze reports counters.
func TestDataSkippingExplain(t *testing.T) {
	db := buildClusteredDB(t, 4096, 256) // 16 groups
	plan, err := db.Explain(`SELECT SUM(v) FROM events WHERE d BETWEEN DATE '1994-03-01' AND DATE '1994-03-31'`)
	if err != nil {
		t.Fatal(err)
	}
	if indexOf(plan, "filters=[") < 0 {
		t.Fatalf("EXPLAIN missing scan filters:\n%s", plan)
	}
	out, err := db.ExplainAnalyze(`SELECT SUM(v) FROM events WHERE d BETWEEN DATE '1994-03-01' AND DATE '1994-03-31'`)
	if err != nil {
		t.Fatal(err)
	}
	if indexOf(out, "groups_pruned=") < 0 {
		t.Fatalf("ExplainAnalyze missing counters:\n%s", out)
	}
	var scanned, pruned, n int
	tail := out[indexOf(out, "scan: "):]
	if _, err := fmt.Sscanf(tail, "scan: groups_scanned=%d groups_pruned=%d rows=%d", &scanned, &pruned, &n); err != nil {
		t.Fatalf("unparseable counters %q: %v", tail, err)
	}
	if pruned == 0 || scanned+pruned != 16 {
		t.Fatalf("ExplainAnalyze counters scanned=%d pruned=%d", scanned, pruned)
	}

	// A grouped aggregate annotates its hash-table line too.
	out, err = db.ExplainAnalyze(`SELECT d, SUM(v) FROM events GROUP BY d`)
	if err != nil {
		t.Fatal(err)
	}
	if indexOf(out, "hash(agg): slots=") < 0 || indexOf(out, "probe_max=") < 0 {
		t.Fatalf("ExplainAnalyze missing hash-table counters:\n%s", out)
	}
}

// With live PDT deltas, groups untouched by deltas still prune and
// results stay row-identical to the unpruned scan — the delta-aware
// half of the tentpole.
func TestDataSkippingWithDeltas(t *testing.T) {
	db := buildClusteredDB(t, 10240, 512)
	// Touch groups 0 (modify), 3 (delete), and append past the end, so
	// deltas live at both edges and the middle stays cold.
	if _, err := db.Exec(`UPDATE events SET v = 1000.5 WHERE id = 37`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`DELETE FROM events WHERE id = 1600`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO events VALUES (10240, DATE '2001-01-01', 7.5)`); err != nil {
		t.Fatal(err)
	}
	queries := []struct {
		sql        string
		wantPruned bool
	}{
		// Cold middle range: every touched group is elsewhere.
		{`SELECT id, d, v FROM events WHERE id BETWEEN 5000 AND 5999 ORDER BY id`, true},
		// Range overlapping the deleted row's group: that group must
		// merge (and drop id 1600) while its clean neighbors prune.
		{`SELECT id, d, v FROM events WHERE id BETWEEN 1400 AND 2500 ORDER BY id`, true},
		// Range covering the modified row sees the new value.
		{`SELECT id, v FROM events WHERE id BETWEEN 30 AND 40 ORDER BY id`, true},
		// Append is visible to an unbounded tail range.
		{`SELECT id, d, v FROM events WHERE id >= 10000 ORDER BY id`, true},
		// Full scan: nothing prunable, everything merged.
		{`SELECT id, d, v FROM events ORDER BY id`, false},
	}
	for _, q := range queries {
		db.SetDataSkipping(true)
		before := db.ScanStats()
		on, err := db.Query(q.sql)
		if err != nil {
			t.Fatalf("%s: %v", q.sql, err)
		}
		delta := db.ScanStats().GroupsPruned - before.GroupsPruned
		if q.wantPruned && delta == 0 {
			t.Fatalf("%s: expected pruned groups under deltas", q.sql)
		}
		db.SetDataSkipping(false)
		off, err := db.Query(q.sql)
		if err != nil {
			t.Fatalf("%s (off): %v", q.sql, err)
		}
		if len(on.Rows) != len(off.Rows) {
			t.Fatalf("%s: %d rows pruned vs %d unpruned", q.sql, len(on.Rows), len(off.Rows))
		}
		for i := range on.Rows {
			for c := range on.Rows[i] {
				if !on.Rows[i][c].Equal(off.Rows[i][c]) {
					t.Fatalf("%s: row %d col %d differs: %v vs %v", q.sql, i, c, on.Rows[i][c], off.Rows[i][c])
				}
			}
		}
	}
	// Spot-check delta semantics survived the pruned merges.
	db.SetDataSkipping(true)
	res, err := db.Query(`SELECT v FROM events WHERE id = 37`)
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].F64 != 1000.5 {
		t.Fatalf("modified row through pruned scan: %v %v", res, err)
	}
	res, err = db.Query(`SELECT id FROM events WHERE id = 1600`)
	if err != nil || len(res.Rows) != 0 {
		t.Fatalf("deleted row resurfaced: %v %v", res, err)
	}
}

// Pruning composed with GroupLo/GroupHi partition scans: parallel plans
// count skipped groups per partition and keep global positions correct
// under live deltas.
func TestDataSkippingParallelWithDeltas(t *testing.T) {
	db := buildClusteredDB(t, 10240, 512)
	if _, err := db.Exec(`DELETE FROM events WHERE id = 100`); err != nil {
		t.Fatal(err)
	}
	db.SetParallelism(4)
	before := db.ScanStats()
	res, err := db.Query(`SELECT COUNT(*), MIN(id), MAX(id) FROM events WHERE id BETWEEN 4000 AND 8191`)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0].I64 != 4192 || row[1].I64 != 4000 || row[2].I64 != 8191 {
		t.Fatalf("partitioned pruned aggregate: %v", row)
	}
	st := db.ScanStats()
	pruned := st.GroupsPruned - before.GroupsPruned
	scanned := st.GroupsScanned - before.GroupsScanned
	// Groups 7..15 hold ids [3584, 8192) — 9 groups by statistics —
	// and group 0 is pinned by its delete entry, so across all
	// partitions 10 groups scan and 10 prune.
	if scanned != 10 || pruned != 10 {
		t.Fatalf("partitioned counters scanned=%d pruned=%d (want 10/10)", scanned, pruned)
	}
	// And the deleted row stays gone in a partitioned pruned scan that
	// must merge its group.
	res, err = db.Query(`SELECT COUNT(*) FROM events WHERE id BETWEEN 0 AND 511`)
	if err != nil || res.Rows[0][0].I64 != 511 {
		t.Fatalf("partitioned merge over deltas: %v %v", res, err)
	}
}

// BenchmarkDataSkipping measures a Q6-style selective range aggregate
// over clustered data with min/max pruning on vs. off — the ns/op gap
// is the decompression the skipped row groups never paid for. Run by
// the CI bench job next to the streaming-allocation benchmark.
func BenchmarkDataSkipping(b *testing.B) {
	db := buildClusteredDB(b, 131072, 2048) // 64 groups
	stmt, err := db.Prepare(`SELECT SUM(v), COUNT(*) FROM events WHERE d BETWEEN ? AND ?`)
	if err != nil {
		b.Fatal(err)
	}
	// ~6% of the key space: dates advance one day per 16 rows.
	lo, _ := time.Parse("2006-01-02", "1994-06-01")
	hi, _ := time.Parse("2006-01-02", "1994-06-30")
	run := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := stmt.Query(lo, hi)
			if err != nil {
				b.Fatal(err)
			}
			if res.Rows[0][1].I64 != 16*30 {
				b.Fatalf("unexpected count %d", res.Rows[0][1].I64)
			}
		}
	}
	b.Run("PruneOn", func(b *testing.B) {
		db.SetDataSkipping(true)
		run(b)
	})
	b.Run("PruneOff", func(b *testing.B) {
		db.SetDataSkipping(false)
		run(b)
	})
}
