package vectorwise

import (
	"context"
	"errors"
	"fmt"
	"time"

	"vectorwise/internal/algebra"
	"vectorwise/internal/core"
	"vectorwise/internal/storage"
	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
	"vectorwise/internal/xcompile"
)

// ErrRowsClosed is returned by Rows methods called after Close.
var ErrRowsClosed = errors.New("vectorwise: Rows is closed")

// Rows is a streaming result cursor: the pull-based vectorized pipeline
// exposed directly, instead of drained into a boxed []vtypes.Row. A Rows
// executes lazily — each NextBatch (or the Next/Scan pair) pulls one
// ~1K-row vector.Batch through the operator tree, so a consumer that
// stops early never pays for rows it did not read, and a result of any
// size streams in O(vector) memory.
//
// # Snapshot tenure
//
// An open Rows holds no DB lock. QueryContext pins the current epoch
// snapshot — an immutable image of every table's committed state — and
// the cursor streams against it until Close, however slowly it is
// consumed. Concurrent statements from other goroutines proceed
// freely, writers included: DML commits new delta layers and the tuple
// mover reorganizes storage without waiting for open cursors, and the
// cursor keeps seeing exactly the state of its pinned epoch
// ([Rows.Epoch]). Issuing statements from the goroutine holding an
// open Rows is likewise safe (the shared read lock is held only inside
// QueryContext itself, never across a cursor's lifetime).
//
// Next returning false and NextBatch returning (nil, nil) auto-close
// the cursor, so a fully drained Rows releases its snapshot without an
// explicit Close; calling Close anyway is cheap and always correct (it
// is idempotent). Close on a partially consumed cursor aborts the
// statement (operators observe an internal cancel), so stopping early
// never executes the rest of the query. Close cursors promptly anyway:
// the snapshot pins superseded stable images and delta layers in
// memory until the last cursor on its epoch closes.
//
// # Cancellation
//
// The context passed to QueryContext is checked between batches by every
// operator in the compiled tree, including exchange workers. Once it is
// done, the in-flight statement — scan, join build, aggregation,
// sort — stops at the next vector boundary and the cursor's error is the
// context's error. The cursor auto-closes, releasing its snapshot.
//
// Rows is not safe for concurrent use by multiple goroutines.
type Rows struct {
	db   *DB
	snap *dbSnapshot
	op   core.Operator
	// cancel aborts the statement's internal context on Close, so a
	// cursor abandoned mid-result stops its operators (including
	// exchange producers) at the next vector boundary instead of
	// letting them run the statement to completion during Close.
	cancel context.CancelFunc

	cols   []string
	schema *vtypes.Schema
	// stats counts this statement's row-group outcomes; folded into
	// the DB's cumulative counters on Close.
	stats *storage.ScanStats
	// hashSink collects this statement's hash-table stats (recorded as
	// each agg/join operator closes); folded into the DB's cumulative
	// counters on Close.
	hashSink *core.HashStatsSink

	batch  *vector.Batch // current batch (operator-owned, valid until next pull)
	pos    int           // next unread live row in batch
	cur    int           // physical index of the current row (after Next)
	hasRow bool
	err    error
	closed bool
}

// openRowsLocked compiles and opens a bound plan into a cursor. The
// caller holds db.mu.RLock (and releases it itself after this returns,
// success or error). The cursor pins the current epoch snapshot and
// compiles scans against it, so it needs no lock after this; Close
// (or draining to the end) drops the snapshot reference.
func (db *DB) openRowsLocked(ctx context.Context, plan algebra.Node) (*Rows, error) {
	// The statement runs under a child context so Close can abort it:
	// the caller's ctx cancels it from outside, Close from inside.
	ctx, cancel := context.WithCancel(ctx)
	snap := db.acquireSnapshot()
	stats := &storage.ScanStats{}
	hashSink := &core.HashStatsSink{}
	op, err := xcompile.Compile(plan, db.cat, xcompile.Options{
		Fetch:     db.buf,
		Ctx:       ctx,
		ScanStats: stats,
		HashStats: hashSink,
		NoPrune:   db.noSkip,
		Resolver:  snap,
	})
	if err != nil {
		cancel()
		snap.unref()
		return nil, err
	}
	if err := op.Open(); err != nil {
		op.Close()
		cancel()
		snap.unref()
		return nil, err
	}
	schema := plan.Schema()
	cols := make([]string, schema.Len())
	for i := range cols {
		cols[i] = schema.Col(i).Name
	}
	return &Rows{db: db, snap: snap, op: op, cancel: cancel, cols: cols, schema: schema, stats: stats, hashSink: hashSink}, nil //vw:owns Rows.close releases the snapshot reference
}

// Epoch returns the data epoch this cursor pinned at QueryContext time.
// Every row the cursor ever yields reflects exactly the committed state
// of that epoch, regardless of concurrent writes; two cursors reporting
// the same epoch see identical data.
func (r *Rows) Epoch() uint64 { return r.snap.epoch }

// ScanStats returns this statement's row-group counters so far: groups
// the scans decompressed vs groups min/max data skipping pruned. On a
// selective range query over clustered data, GroupsPruned > 0 is the
// signature of working predicate pushdown. Valid during iteration and
// after Close.
func (r *Rows) ScanStats() storage.ScanStatsSnapshot { return r.stats.Snapshot() }

// HashStats returns the hash-table stats of every HashAggregate and
// HashJoin this statement ran: directory slots, entries, load, resize
// count, probe-length p50/max and the table-bound phase time. Each
// operator records when it closes, so the full set is available once
// the cursor is drained (or Closed); a partially consumed cursor
// reports only the operators that have finished.
func (r *Rows) HashStats() []core.HashTableStat { return r.hashSink.Snapshot() }

// Columns returns the output column names.
func (r *Rows) Columns() []string {
	return append([]string(nil), r.cols...)
}

// Schema returns the output schema (names and kinds) — what columnar
// consumers need to interpret NextBatch vectors.
func (r *Rows) Schema() *vtypes.Schema { return r.schema }

// NextBatch returns the next vector batch, or (nil, nil) at end of
// stream (at which point the cursor has auto-closed). The batch is owned
// by the engine and valid only until the next NextBatch/Next/Close on
// this cursor; consumers that retain data across calls must copy it.
// This is the zero-boxing path: batch vectors are the engine's own
// typed arrays (often zero-copy views of decompressed storage chunks).
func (r *Rows) NextBatch() (*vector.Batch, error) {
	if r.closed {
		if r.err != nil {
			return nil, r.err
		}
		return nil, ErrRowsClosed
	}
	r.hasRow = false
	for {
		b, err := r.op.Next()
		if err != nil {
			r.err = err
			r.close()
			return nil, err
		}
		if b == nil {
			r.close()
			return nil, nil
		}
		if b.N == 0 {
			continue
		}
		r.batch = b
		r.pos = b.N // row-at-a-time state: mark consumed for Next()
		return b, nil
	}
}

// Next advances to the next row, reporting whether one is available.
// It returns false at end of stream or on error (check Err); in both
// cases the cursor has auto-closed and its snapshot is released.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	for r.batch == nil || r.pos >= r.batch.N {
		b, err := r.op.Next()
		if err != nil {
			r.err = err
			r.close()
			return false
		}
		if b == nil {
			r.close()
			return false
		}
		if b.N == 0 {
			continue
		}
		r.batch, r.pos = b, 0
	}
	r.cur = r.batch.LiveIndex(r.pos)
	r.pos++
	r.hasRow = true
	return true
}

// Scan copies the current row (positioned by Next) into dest, one
// pointer per output column: *int64, *int, *float64, *string, *bool,
// *time.Time (DATE), *vtypes.Value, or *any. Destination kinds are
// checked: BIGINT widens into *float64 and DATE formats into *string
// ("YYYY-MM-DD"), but any other mismatch errors rather than coercing.
// A NULL scans as nil into *any, as a null Value into *vtypes.Value,
// and errors for the typed pointers.
func (r *Rows) Scan(dest ...any) error {
	if r.err != nil {
		return r.err
	}
	if r.closed {
		return ErrRowsClosed
	}
	if !r.hasRow {
		return errors.New("vectorwise: Scan called without a successful Next")
	}
	if len(dest) != len(r.cols) {
		return fmt.Errorf("vectorwise: Scan expects %d destinations, got %d", len(r.cols), len(dest))
	}
	for c, d := range dest {
		if err := scanValue(r.batch.Vecs[c], r.cur, d); err != nil {
			return fmt.Errorf("vectorwise: Scan column %q: %w", r.cols[c], err)
		}
	}
	return nil
}

// scanValue assigns vector position ix to the destination pointer.
func scanValue(v *vector.Vector, ix int, dest any) error {
	isNull := v.Nulls != nil && v.Nulls[ix]
	switch d := dest.(type) {
	case *any:
		if isNull {
			*d = nil
			return nil
		}
		switch v.Kind {
		case vtypes.KindDate:
			y, m, day := vtypes.CivilFromDays(v.I64[ix])
			*d = time.Date(y, time.Month(m), day, 0, 0, 0, 0, time.UTC)
		default:
			switch v.Kind.StorageClass() {
			case vtypes.ClassI64:
				*d = v.I64[ix]
			case vtypes.ClassF64:
				*d = v.F64[ix]
			case vtypes.ClassStr:
				*d = v.Str[ix]
			case vtypes.ClassBool:
				*d = v.B[ix]
			}
		}
		return nil
	case *vtypes.Value:
		*d = v.Get(ix)
		return nil
	}
	if isNull {
		return errors.New("NULL value; use *any or *vtypes.Value")
	}
	// DATE shares BIGINT's storage class but is its own logical type:
	// it scans as *time.Time, *string ("YYYY-MM-DD") or *any, never as
	// a bare day count through the numeric destinations.
	isDate := v.Kind == vtypes.KindDate
	switch d := dest.(type) {
	case *int64:
		if v.Kind.StorageClass() != vtypes.ClassI64 || isDate {
			return fmt.Errorf("cannot scan %v into *int64", v.Kind)
		}
		*d = v.I64[ix]
	case *int:
		if v.Kind.StorageClass() != vtypes.ClassI64 || isDate {
			return fmt.Errorf("cannot scan %v into *int", v.Kind)
		}
		*d = int(v.I64[ix])
	case *float64:
		switch {
		case v.Kind.StorageClass() == vtypes.ClassF64:
			*d = v.F64[ix]
		case v.Kind.StorageClass() == vtypes.ClassI64 && !isDate:
			*d = float64(v.I64[ix])
		default:
			return fmt.Errorf("cannot scan %v into *float64", v.Kind)
		}
	case *string:
		switch {
		case v.Kind.StorageClass() == vtypes.ClassStr:
			*d = v.Str[ix]
		case isDate:
			*d = vtypes.FormatDate(v.I64[ix])
		default:
			return fmt.Errorf("cannot scan %v into *string", v.Kind)
		}
	case *bool:
		if v.Kind.StorageClass() != vtypes.ClassBool {
			return fmt.Errorf("cannot scan %v into *bool", v.Kind)
		}
		*d = v.B[ix]
	case *time.Time:
		if v.Kind != vtypes.KindDate {
			return fmt.Errorf("cannot scan %v into *time.Time", v.Kind)
		}
		y, m, day := vtypes.CivilFromDays(v.I64[ix])
		*d = time.Date(y, time.Month(m), day, 0, 0, 0, 0, time.UTC)
	default:
		return fmt.Errorf("unsupported Scan destination %T", dest)
	}
	return nil
}

// Err returns the first error encountered while iterating (including
// the context's error after cancellation). It is valid after Close.
func (r *Rows) Err() error { return r.err }

// Close releases the cursor: it closes the operator tree (joining any
// exchange workers) and drops its snapshot reference — the last cursor
// on a superseded epoch triggers reclamation of stable images that can
// no longer be read. Close is idempotent; only the first call does
// work. The returned error is the operator tree's close error, not the
// iteration error (see Err).
func (r *Rows) Close() error { return r.close() }

func (r *Rows) close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.hasRow = false
	r.batch = nil
	// Abort the statement before closing the tree: a partially
	// consumed parallel plan has live exchange producers, and without
	// the cancel they would run the rest of the statement while Close
	// drains them.
	r.cancel()
	err := r.op.Close()
	r.db.scanStats.Add(r.stats.Snapshot())
	r.db.hashStats.Add(r.hashSink.Snapshot())
	r.snap.unref()
	return err
}

// collect drains the cursor into a boxed Result — the compatibility
// bridge DB.Query sits on. It always closes the cursor.
func (r *Rows) collect() (*Result, error) {
	defer r.close()
	res := &Result{Columns: r.Columns()}
	for {
		b, err := r.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return res, nil
		}
		for i := 0; i < b.N; i++ {
			res.Rows = append(res.Rows, b.Row(i))
		}
	}
}
