// Package vectorwise is an embeddable analytical database engine that
// reproduces the system described in "Vectorwise: a Vectorized
// Analytical DBMS" (Zukowski, van de Wiel, Boncz — ICDE 2012): an
// X100-style vectorized execution core over compressed PAX/DSM column
// storage, with Positional-Delta-Tree transactions, a write-ahead log,
// cooperative scans, a rule-based rewriter with Volcano-style multi-core
// parallelism, and a SQL frontend with a histogram-fed planner and a
// cross-compiler into the vectorized algebra.
//
// Quickstart:
//
//	db := vectorwise.OpenMemory()
//	db.Exec(`CREATE TABLE t (k BIGINT, v DOUBLE)`)
//	db.Exec(`INSERT INTO t VALUES (1, 2.5), (2, 4.0)`)
//	res, _ := db.Query(`SELECT k, SUM(v) s FROM t GROUP BY k ORDER BY k`)
//	for _, row := range res.Rows { fmt.Println(row) }
//
// DB is safe for concurrent use (see the DB type for the reader/writer
// contract). To serve a database over the network, see cmd/vwserve —
// an HTTP/JSON front end with sessions, timeouts, and admission
// control built on internal/server.
package vectorwise

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"vectorwise/internal/algebra"
	"vectorwise/internal/bufmgr"
	"vectorwise/internal/catalog"
	"vectorwise/internal/core"
	"vectorwise/internal/pdt"
	"vectorwise/internal/rewriter"
	"vectorwise/internal/sql"
	"vectorwise/internal/storage"
	"vectorwise/internal/tupleengine"
	"vectorwise/internal/txn"
	"vectorwise/internal/vtypes"
	"vectorwise/internal/wal"
	"vectorwise/internal/xcompile"
)

// DB is a database instance. All exported methods are safe for
// concurrent use by multiple goroutines.
//
// # Concurrency model
//
// DB follows a reader/writer discipline enforced by an internal
// RWMutex:
//
//   - Read paths — [DB.Query], [DB.Explain] — run under a shared read
//     lock. Any number of SELECTs execute concurrently; scans merge
//     the stable column store with the committed master PDT, both of
//     which are immutable once published, so readers observe a
//     consistent snapshot for the duration of the statement.
//   - Write paths — [DB.Exec] (CREATE/INSERT/UPDATE/DELETE),
//     [DB.Checkpoint], [DB.Analyze], [DB.RegisterTable],
//     [DB.SetParallelism], [DB.Close] — serialize under the exclusive
//     write lock. A writer therefore never observes a half-applied DDL
//     or a torn catalog-layer swap, and commit/refresh of the master
//     PDT is atomic with respect to readers.
//   - [DB.Catalog] and [DB.BufferManager] are plain accessors that
//     take no lock; the handles they return are internally
//     synchronized for the operations queries perform.
//
// Statement-level isolation is snapshot-per-statement: a SELECT that
// starts before an UPDATE commits sees the pre-update image; one that
// starts after sees all of it. Cross-statement transactions are managed
// internally per DML statement (each INSERT/UPDATE/DELETE is one
// PDT transaction validated first-committer-wins at commit).
type DB struct {
	// mu is the reader/writer gate described in the type comment.
	// Lock ordering: db.mu is always acquired before any internal
	// package mutex (catalog.Catalog.mu, txn.Manager.mu,
	// bufmgr.Manager.mu); no internal package calls back into DB.
	mu sync.RWMutex

	cat *catalog.Catalog
	txm *txn.Manager
	buf *bufmgr.Manager
	log *wal.Log
	dir string
	// Parallelism is the worker count the parallel rewriter targets for
	// Query; defaults to GOMAXPROCS. Set to 1 to force serial plans.
	//
	// Mutating the field directly is only safe before the DB is shared
	// between goroutines; afterwards use [DB.SetParallelism].
	Parallelism int
}

// Result is a query result set.
type Result struct {
	// Columns are the output column names.
	Columns []string
	// Rows are the boxed result rows.
	Rows []vtypes.Row
}

// OpenMemory creates an in-memory database (no WAL durability).
func OpenMemory() *DB {
	return &DB{
		cat:         catalog.New(),
		txm:         txn.NewManager(nil),
		buf:         bufmgr.New(0, nil),
		Parallelism: runtime.GOMAXPROCS(0),
	}
}

// Open loads (or initializes) a database directory: one .vwt file per
// table plus a write-ahead log replayed on open.
func Open(dir string) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	log, recs, err := wal.Open(filepath.Join(dir, "vectorwise.wal"))
	if err != nil {
		return nil, err
	}
	db := &DB{
		cat:         catalog.New(),
		txm:         txn.NewManager(log),
		buf:         bufmgr.New(0, nil),
		log:         log,
		dir:         dir,
		Parallelism: runtime.GOMAXPROCS(0),
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.vwt"))
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	for _, f := range files {
		t, err := storage.Open(f)
		if err != nil {
			return nil, fmt.Errorf("vectorwise: load %s: %w", f, err)
		}
		db.cat.Put(t)
		db.txm.Register(t)
	}
	if err := db.txm.Recover(recs); err != nil {
		return nil, err
	}
	for _, name := range db.cat.Names() {
		if err := db.refreshLayers(name); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Close releases the WAL handle. It takes the write lock, so it blocks
// until in-flight statements drain; using the DB after Close is invalid.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.log != nil {
		return db.log.Close()
	}
	return nil
}

// SetParallelism sets the worker count the parallel rewriter targets
// for subsequent queries. Unlike writing the Parallelism field
// directly, it is safe to call while other goroutines are querying.
func (db *DB) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	db.mu.Lock()
	db.Parallelism = n
	db.mu.Unlock()
}

// Catalog exposes the catalog (experiment harness hook). The catalog is
// internally synchronized, but mutating entries it returns is only safe
// while no queries are running.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// BufferManager exposes the buffer pool (experiment harness hook). The
// manager is safe for concurrent use.
func (db *DB) BufferManager() *bufmgr.Manager { return db.buf }

// refreshLayers publishes the committed master PDT into the catalog so
// scans merge it.
func (db *DB) refreshLayers(table string) error {
	master, stable, err := db.txm.MasterPDT(table)
	if err != nil {
		return err
	}
	_ = stable
	if master.Empty() {
		return db.cat.SetLayers(table, nil)
	}
	return db.cat.SetLayers(table, []*pdt.PDT{master})
}

// RegisterTable adds a pre-built table (bulk loads, TPC-H generator).
func (db *DB) RegisterTable(t *storage.Table) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.registerTableLocked(t)
}

// registerTableLocked is RegisterTable for callers already holding the
// write lock (db.mu is not reentrant).
func (db *DB) registerTableLocked(t *storage.Table) {
	db.cat.Put(t)
	db.txm.Register(t)
}

// Exec runs a DDL/DML statement and returns the affected row count.
// Exec serializes under the DB write lock: one DDL/DML statement runs
// at a time, and never concurrently with a SELECT. Each DML statement
// is a single PDT transaction committed (or aborted) before Exec
// returns.
func (db *DB) Exec(sqlText string) (int64, error) {
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return 0, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	switch s := stmt.(type) {
	case *sql.CreateStmt:
		return 0, db.execCreate(s)
	case *sql.InsertStmt:
		return db.execInsert(s)
	case *sql.UpdateStmt:
		return db.execUpdate(s)
	case *sql.DeleteStmt:
		return db.execDelete(s)
	case *sql.SelectStmt:
		return 0, fmt.Errorf("vectorwise: use Query for SELECT")
	case *sql.TxStmt:
		return 0, fmt.Errorf("vectorwise: explicit transactions use Begin()")
	default:
		return 0, fmt.Errorf("vectorwise: unsupported statement %T", stmt)
	}
}

// Query runs a SELECT through the full stack: parse → plan → simplify →
// parallelize → cross-compile → vectorized execution. Queries run under
// a shared read lock: any number run concurrently with each other, and
// each observes a consistent committed snapshot (DDL/DML waits for
// in-flight queries before mutating shared state).
func (db *DB) Query(sqlText string) (*Result, error) {
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("vectorwise: Query requires SELECT")
	}
	planner := &sql.Planner{Cat: db.cat}
	plan, err := planner.PlanSelect(sel)
	if err != nil {
		return nil, err
	}
	plan = rewriter.SimplifyPlan(plan)
	ordered := len(sel.OrderBy) > 0
	if db.Parallelism > 1 && !ordered {
		plan = rewriter.Parallelize(plan, db.cat, db.Parallelism)
	} else if db.Parallelism > 1 {
		// Sorted plans parallelize beneath the sort.
		plan = rewriter.Parallelize(plan, db.cat, db.Parallelism)
	}
	return db.runPlan(plan)
}

// Explain returns the optimized plan tree of a SELECT: the planner
// output after simplification and — when Parallelism > 1 — the
// on-the-fly Xchange parallelization rewrite, rendered one operator per
// line. Like Query it runs under the shared read lock.
func (db *DB) Explain(sqlText string) (string, error) {
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return "", err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return "", fmt.Errorf("vectorwise: Explain requires SELECT")
	}
	planner := &sql.Planner{Cat: db.cat}
	plan, err := planner.PlanSelect(sel)
	if err != nil {
		return "", err
	}
	plan = rewriter.SimplifyPlan(plan)
	if db.Parallelism > 1 {
		plan = rewriter.Parallelize(plan, db.cat, db.Parallelism)
	}
	return algebra.Explain(plan), nil
}

// runPlan executes an algebra plan on the vectorized engine.
func (db *DB) runPlan(plan algebra.Node) (*Result, error) {
	op, err := xcompile.Compile(plan, db.cat, xcompile.Options{Fetch: db.buf})
	if err != nil {
		return nil, err
	}
	rows, err := core.Collect(op)
	if err != nil {
		return nil, err
	}
	schema := plan.Schema()
	cols := make([]string, schema.Len())
	for i := range cols {
		cols[i] = schema.Col(i).Name
	}
	return &Result{Columns: cols, Rows: rows}, nil
}

func (db *DB) execCreate(s *sql.CreateStmt) error {
	if _, err := db.cat.Get(s.Table); err == nil {
		return fmt.Errorf("vectorwise: table %q already exists", s.Table)
	}
	var cols []vtypes.Column
	for _, c := range s.Cols {
		var k vtypes.Kind
		switch c.Type {
		case "BIGINT":
			k = vtypes.KindI64
		case "DOUBLE":
			k = vtypes.KindF64
		case "VARCHAR":
			k = vtypes.KindStr
		case "BOOLEAN":
			k = vtypes.KindBool
		case "DATE":
			k = vtypes.KindDate
		default:
			return fmt.Errorf("vectorwise: unsupported type %q", c.Type)
		}
		cols = append(cols, vtypes.Column{Name: strings.ToLower(c.Name), Kind: k, Nullable: c.Nullable})
	}
	b := storage.NewBuilder(s.Table, &vtypes.Schema{Cols: cols}, 0)
	t, err := b.Finish()
	if err != nil {
		return err
	}
	db.registerTableLocked(t)
	return db.persistTable(s.Table)
}

func (db *DB) execInsert(s *sql.InsertStmt) (int64, error) {
	ent, err := db.cat.Get(s.Table)
	if err != nil {
		return 0, err
	}
	schema := ent.Table.Schema()
	tx := db.txm.Begin()
	planner := &sql.Planner{Cat: db.cat}
	_ = planner
	for _, rowExprs := range s.Rows {
		if len(rowExprs) != schema.Len() {
			tx.Abort()
			return 0, fmt.Errorf("vectorwise: INSERT arity %d != %d", len(rowExprs), schema.Len())
		}
		row := make(vtypes.Row, schema.Len())
		for c, e := range rowExprs {
			v, err := literalValue(e, schema.Col(c).Kind)
			if err != nil {
				tx.Abort()
				return 0, err
			}
			row[c] = v
		}
		if err := tx.Insert(s.Table, row); err != nil {
			tx.Abort()
			return 0, err
		}
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	if err := db.refreshLayers(s.Table); err != nil {
		return 0, err
	}
	return int64(len(s.Rows)), nil
}

// literalValue evaluates a literal-only AST expression to a value of the
// wanted kind.
func literalValue(e sql.Expr, want vtypes.Kind) (vtypes.Value, error) {
	planner := &sql.Planner{}
	lo, err := planner.LowerLiteral(e, want)
	if err != nil {
		return vtypes.Value{}, err
	}
	return lo, nil
}

// matchingRIDs scans a table in a transaction and returns the RIDs whose
// rows satisfy pred (nil = all).
func (db *DB) matchingRIDs(tx *txn.Txn, table string, pred algebra.Scalar) ([]int64, error) {
	src, schema, err := tx.Scan(table, 0)
	if err != nil {
		return nil, err
	}
	_ = schema
	var rids []int64
	var rid int64
	for {
		cols, n, err := src.Next()
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return rids, nil
		}
		for i := 0; i < n; i++ {
			if pred == nil {
				rids = append(rids, rid)
				rid++
				continue
			}
			row := make(vtypes.Row, len(cols))
			for c, v := range cols {
				row[c] = v.Get(i)
			}
			v, err := tupleengine.EvalRow(pred, row)
			if err != nil {
				return nil, err
			}
			if !v.Null && v.B {
				rids = append(rids, rid)
			}
			rid++
		}
	}
}

func (db *DB) execUpdate(s *sql.UpdateStmt) (int64, error) {
	ent, err := db.cat.Get(s.Table)
	if err != nil {
		return 0, err
	}
	schema := ent.Table.Schema()
	planner := &sql.Planner{Cat: db.cat}
	var pred algebra.Scalar
	if s.Where != nil {
		pred, err = planner.LowerOnTable(s.Where, schema)
		if err != nil {
			return 0, err
		}
	}
	tx := db.txm.Begin()
	rids, err := db.matchingRIDs(tx, s.Table, pred)
	if err != nil {
		tx.Abort()
		return 0, err
	}
	for _, rid := range rids {
		for _, colName := range s.SetOrder {
			ci := schema.ColIndex(colName)
			if ci < 0 {
				tx.Abort()
				return 0, fmt.Errorf("vectorwise: unknown column %q", colName)
			}
			// SET expressions may reference the current row.
			valExpr, err := planner.LowerOnTable(s.Set[colName], schema)
			if err != nil {
				tx.Abort()
				return 0, err
			}
			row, err := tx.RowAt(s.Table, rid)
			if err != nil {
				tx.Abort()
				return 0, err
			}
			v, err := tupleengine.EvalRow(valExpr, row)
			if err != nil {
				tx.Abort()
				return 0, err
			}
			v.Kind = schema.Col(ci).Kind
			if err := tx.Update(s.Table, rid, ci, v); err != nil {
				tx.Abort()
				return 0, err
			}
		}
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	if err := db.refreshLayers(s.Table); err != nil {
		return 0, err
	}
	return int64(len(rids)), nil
}

func (db *DB) execDelete(s *sql.DeleteStmt) (int64, error) {
	ent, err := db.cat.Get(s.Table)
	if err != nil {
		return 0, err
	}
	schema := ent.Table.Schema()
	planner := &sql.Planner{Cat: db.cat}
	var pred algebra.Scalar
	if s.Where != nil {
		pred, err = planner.LowerOnTable(s.Where, schema)
		if err != nil {
			return 0, err
		}
	}
	tx := db.txm.Begin()
	rids, err := db.matchingRIDs(tx, s.Table, pred)
	if err != nil {
		tx.Abort()
		return 0, err
	}
	// Delete back to front so earlier RIDs stay valid.
	for i := len(rids) - 1; i >= 0; i-- {
		if err := tx.Delete(s.Table, rids[i]); err != nil {
			tx.Abort()
			return 0, err
		}
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	if err := db.refreshLayers(s.Table); err != nil {
		return 0, err
	}
	return int64(len(rids)), nil
}

// Checkpoint folds a table's committed deltas into a fresh stable image,
// persists it (when the DB is disk-backed) and resets the WAL. It holds
// the DB write lock for the duration, which supplies the quiescence the
// transaction manager's checkpoint requires.
func (db *DB) Checkpoint(table string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.txm.Checkpoint(table); err != nil {
		return err
	}
	_, stable, err := db.txm.MasterPDT(table)
	if err != nil {
		return err
	}
	db.cat.Put(stable)
	db.txm.Register(stable)
	if err := db.refreshLayers(table); err != nil {
		return err
	}
	return db.persistTable(table)
}

// persistTable writes a table file when disk-backed.
func (db *DB) persistTable(table string) error {
	if db.dir == "" {
		return nil
	}
	ent, err := db.cat.Get(table)
	if err != nil {
		return err
	}
	return ent.Table.Save(filepath.Join(db.dir, table+".vwt"))
}

// Analyze refreshes optimizer statistics for all tables. It takes the
// write lock because it mutates cataloged entries in place
// (Entry.Stats), which must not race with anything traversing the
// catalog.
func (db *DB) Analyze() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.cat.AnalyzeAll()
}
