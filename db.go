// Package vectorwise is an embeddable analytical database engine that
// reproduces the system described in "Vectorwise: a Vectorized
// Analytical DBMS" (Zukowski, van de Wiel, Boncz — ICDE 2012): an
// X100-style vectorized execution core over compressed PAX/DSM column
// storage, with Positional-Delta-Tree transactions, a write-ahead log,
// cooperative scans, a rule-based rewriter with Volcano-style multi-core
// parallelism, and a SQL frontend with a histogram-fed planner and a
// cross-compiler into the vectorized algebra.
//
// Quickstart:
//
//	db := vectorwise.OpenMemory()
//	db.Exec(`CREATE TABLE t (k BIGINT, v DOUBLE)`)
//	db.Exec(`INSERT INTO t VALUES (1, 2.5), (2, 4.0)`)
//	res, _ := db.Query(`SELECT k, SUM(v) s FROM t GROUP BY k ORDER BY k`)
//	for _, row := range res.Rows { fmt.Println(row) }
//
// Repeated statements should use placeholders so the plan cache
// amortizes the SQL front end away (see DB.Prepare):
//
//	stmt, _ := db.Prepare(`SELECT v FROM t WHERE k = ?`)
//	res, _ = stmt.Query(int64(2)) // planned once, bound per call
//
// Large or latency-sensitive results should stream through a cursor
// instead of collecting: DB.QueryContext returns a Rows whose NextBatch
// hands out the engine's own vector batches (no boxing) and whose
// context cancels the statement between batches:
//
//	rows, _ := db.QueryContext(ctx, `SELECT k, v FROM t`)
//	defer rows.Close()
//	for {
//		b, err := rows.NextBatch()
//		if err != nil || b == nil { break }
//		_ = b.Vecs[1].F64 // typed columnar access, zero copies
//	}
//
// DB is safe for concurrent use (see the DB type for the reader/writer
// contract). To serve a database over the network, see cmd/vwserve —
// an HTTP/JSON front end with sessions, timeouts, and admission
// control built on internal/server.
package vectorwise

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"vectorwise/internal/algebra"
	"vectorwise/internal/bufmgr"
	"vectorwise/internal/catalog"
	"vectorwise/internal/core"
	"vectorwise/internal/pdt"
	"vectorwise/internal/plancache"
	"vectorwise/internal/rewriter"
	"vectorwise/internal/sql"
	"vectorwise/internal/storage"
	"vectorwise/internal/tupleengine"
	"vectorwise/internal/txn"
	"vectorwise/internal/vtypes"
	"vectorwise/internal/wal"
)

// DB is a database instance. All exported methods are safe for
// concurrent use by multiple goroutines.
//
// # Concurrency model
//
// Reads run against immutable epoch snapshots; writes serialize under
// an internal RWMutex:
//
//   - Read paths — [DB.Query], [DB.QueryContext], [DB.Explain] — take
//     the shared read lock only to resolve and compile the statement.
//     At open time the statement pins the current epoch snapshot (the
//     stable image plus frozen PDT layer stack of every table, all
//     immutable once published) and the lock is released before the
//     first batch is pulled. An open streaming cursor ([Rows])
//     therefore never blocks writers: it holds a snapshot reference,
//     not a lock, and sees exactly the data epoch it pinned no matter
//     how many commits, tuple-mover folds or stable-image swaps happen
//     while it streams. Superseded snapshots are reclaimed when their
//     last cursor closes.
//   - Write paths — [DB.Exec] (CREATE/INSERT/UPDATE/DELETE),
//     [DB.Checkpoint], [DB.MoveTuples] install windows, [DB.Analyze],
//     [DB.RegisterTable], [DB.SetParallelism], [DB.Close] — serialize
//     under the exclusive write lock. A writer therefore never
//     observes a half-applied DDL or a torn layer swap. Commits
//     install new PDT tail layers in O(own writes); folding layers
//     and rebuilding stable images is the background tuple mover's
//     job (see [DB.SetMoverInterval]), which does its heavy work on
//     pinned state off-line and takes the write lock only for
//     pointer-swap install windows.
//   - [DB.Catalog] and [DB.BufferManager] are plain accessors that
//     take no lock; the handles they return are internally
//     synchronized for the operations queries perform.
//
// Statement-level isolation is snapshot-per-statement: a SELECT that
// starts before an UPDATE commits sees the pre-update image; one that
// starts after sees all of it. Cross-statement transactions are managed
// internally per DML statement (each INSERT/UPDATE/DELETE is one
// PDT transaction validated first-committer-wins at commit).
type DB struct {
	// mu is the writer gate described in the type comment.
	// Lock ordering: db.mu before db.snapMu before any internal
	// package mutex (catalog.Catalog.mu, txn.Manager.mu,
	// bufmgr.Manager.mu); no internal package calls back into DB.
	mu sync.RWMutex

	cat *catalog.Catalog
	txm *txn.Manager
	buf *bufmgr.Manager
	log *wal.Log
	dir string

	// snapMu guards the current epoch snapshot and all snapshot
	// refcounts (see snapshot.go).
	snapMu sync.Mutex
	cur    *dbSnapshot

	// moverMu guards the tuple mover's control state and counters
	// (see mover.go).
	moverMu        sync.Mutex
	moverStop      chan struct{}
	moverDone      chan struct{}
	moverThreshold int
	moverStats     MoverStats
	moverFail      func(stage string) error
	// plans caches compiled statements keyed by (normalized SQL, schema
	// epoch, parallelism): optimized plan templates for SELECTs, parsed
	// ASTs for DDL/DML. The cache is internally synchronized; DDL,
	// checkpoints and ANALYZE bump the catalog epoch so stale entries
	// become unreachable (see internal/plancache).
	plans *plancache.Cache
	// Parallelism is the worker count the parallel rewriter targets for
	// Query; defaults to GOMAXPROCS. Set to 1 to force serial plans.
	//
	// Mutating the field directly is only safe before the DB is shared
	// between goroutines; afterwards use [DB.SetParallelism].
	Parallelism int

	// scanStats accumulates row-group outcomes (scanned vs pruned by
	// min/max statistics) across all queries; see DB.ScanStats.
	scanStats storage.ScanStats
	// hashStats accumulates hash-table counters (tables built, entries,
	// resizes, longest probe) across all queries; see DB.HashStats.
	hashStats core.HashStatsTotals
	// noSkip disables data skipping for new statements (see
	// DB.SetDataSkipping). Guarded by mu like Parallelism.
	noSkip bool
}

// Result is a query result set.
type Result struct {
	// Columns are the output column names.
	Columns []string
	// Rows are the boxed result rows.
	Rows []vtypes.Row
}

// DefaultPlanCacheCapacity bounds the statement/plan cache of a new DB.
const DefaultPlanCacheCapacity = 256

// OpenMemory creates an in-memory database (no WAL durability). The
// background tuple mover starts stopped — enable it with
// [DB.SetMoverInterval] or drive it manually with [DB.MoveTuples];
// commits past the inline layer cap still fold on their own.
func OpenMemory() *DB {
	return &DB{
		cat:            catalog.New(),
		txm:            txn.NewManager(nil),
		buf:            bufmgr.New(0, nil),
		plans:          plancache.New(DefaultPlanCacheCapacity),
		Parallelism:    runtime.GOMAXPROCS(0),
		moverThreshold: DefaultMoverThreshold,
	}
}

// Open loads (or initializes) a database directory: one .vwt file per
// table plus a write-ahead log replayed on open.
func Open(dir string) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	log, recs, err := wal.Open(filepath.Join(dir, "vectorwise.wal"))
	if err != nil {
		return nil, err
	}
	db := &DB{
		cat:            catalog.New(),
		txm:            txn.NewManager(log),
		buf:            bufmgr.New(0, nil),
		log:            log,
		dir:            dir,
		plans:          plancache.New(DefaultPlanCacheCapacity),
		Parallelism:    runtime.GOMAXPROCS(0),
		moverThreshold: DefaultMoverThreshold,
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.vwt"))
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	for _, f := range files {
		t, err := storage.Open(f)
		if err != nil {
			return nil, fmt.Errorf("vectorwise: load %s: %w", f, err)
		}
		db.cat.Put(t)
		db.txm.Register(t)
	}
	if err := db.txm.Recover(recs); err != nil {
		return nil, err
	}
	for _, name := range db.cat.Names() {
		if err := db.refreshLayers(name); err != nil {
			return nil, err
		}
	}
	db.SetMoverInterval(DefaultMoverInterval)
	return db, nil
}

// Close stops the background tuple mover and releases the WAL handle.
// It takes the write lock, so it blocks until in-flight statements
// drain; using the DB after Close is invalid. Open cursors keep
// streaming their pinned snapshots (purely in-memory state), but no new
// statement may start.
func (db *DB) Close() error {
	db.stopMover()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.log != nil {
		return db.log.Close()
	}
	return nil
}

// SetParallelism sets the worker count the parallel rewriter targets
// for subsequent queries. Unlike writing the Parallelism field
// directly, it is safe to call while other goroutines are querying.
func (db *DB) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	db.mu.Lock()
	db.Parallelism = n
	db.mu.Unlock()
}

// ScanStats returns the cumulative row-group counters of every query
// this DB has run: how many groups scans actually decompressed and how
// many min/max data skipping pruned. The per-query form is
// [Rows.ScanStats].
func (db *DB) ScanStats() storage.ScanStatsSnapshot { return db.scanStats.Snapshot() }

// HashStats returns the cumulative hash-table counters of every query
// this DB has run: how many agg/join tables were built, the distinct
// keys they held, directory resizes, and the longest probe distance
// observed. The per-query form is [Rows.HashStats].
func (db *DB) HashStats() core.HashStatsTotalsSnapshot { return db.hashStats.Snapshot() }

// SetDataSkipping enables or disables min/max row-group pruning for
// subsequent queries (default on). Pushed-down scan filters still
// evaluate either way — the switch isolates the I/O effect of data
// skipping for benchmarks and differential tests. Safe to call while
// other goroutines are querying.
func (db *DB) SetDataSkipping(on bool) {
	db.mu.Lock()
	db.noSkip = !on
	db.mu.Unlock()
}

// Catalog exposes the catalog (experiment harness hook). The catalog is
// internally synchronized, but mutating entries it returns is only safe
// while no queries are running.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// BufferManager exposes the buffer pool (experiment harness hook). The
// manager is safe for concurrent use.
func (db *DB) BufferManager() *bufmgr.Manager { return db.buf }

// refreshLayers publishes the committed PDT layer stack into the
// catalog (the live view for compilations without a pinned snapshot)
// and retires the current epoch snapshot. Callers hold the write lock
// and have just changed committed state.
func (db *DB) refreshLayers(table string) error {
	pin, err := db.txm.Pin(table)
	if err != nil {
		return err
	}
	var layers []*pdt.PDT
	if l := pin.Layers(); len(l) > 0 {
		layers = l
	}
	if err := db.cat.SetLayers(table, layers); err != nil {
		return err
	}
	db.invalidateSnapshot()
	return nil
}

// RegisterTable adds a pre-built table (bulk loads, TPC-H generator).
func (db *DB) RegisterTable(t *storage.Table) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.registerTableLocked(t)
}

// registerTableLocked is RegisterTable for callers already holding the
// write lock (db.mu is not reentrant).
func (db *DB) registerTableLocked(t *storage.Table) {
	db.cat.Put(t)
	db.txm.Register(t)
	db.invalidateSnapshot()
}

// stmtKind classifies a cached statement for dispatch without re-parsing.
type stmtKind uint8

const (
	stmtSelect stmtKind = iota
	stmtExec            // DDL/DML
	stmtTx              // BEGIN/COMMIT/ROLLBACK
)

// cachedStmt is one plan-cache artifact: the reusable compilation of a
// statement under one (schema epoch, parallelism). SELECTs carry an
// optimized plan template (with algebra.Param slots where the SQL had
// placeholders); other statements carry the parsed AST, which exec
// lowers against live values. Both are immutable after construction and
// shared by concurrent executions.
type cachedStmt struct {
	kind      stmtKind
	numParams int
	plan      algebra.Node // SELECT only
	ast       sql.Stmt     // non-SELECT only
}

// classifyStmt wraps a parsed statement as a cache artifact. SELECTs
// come back without a plan — the SELECT path fills it in before the
// artifact is cached (an unplanned SELECT artifact must never be Put).
func classifyStmt(stmt sql.Stmt, numParams int) *cachedStmt {
	cs := &cachedStmt{numParams: numParams}
	switch stmt.(type) {
	case *sql.SelectStmt, *sql.SetOpStmt:
		cs.kind = stmtSelect
	case *sql.TxStmt:
		cs.kind = stmtTx
		cs.ast = stmt //vwlint:ignore arenaescape the artifact never Releases, so the Statement's arena rides along with the cached AST (sql/arena.go ownership note)
	default:
		cs.kind = stmtExec
		cs.ast = stmt //vwlint:ignore arenaescape the artifact never Releases, so the Statement's arena rides along with the cached AST (sql/arena.go ownership note)
	}
	return cs
}

// getStmtLocked returns the cached compilation of normalized statement
// text under the current schema epoch, parsing and planning on miss.
// Callers hold db.mu (read suffices: planning only reads the catalog,
// and the cache is internally synchronized).
func (db *DB) getStmtLocked(norm string) (*cachedStmt, error) {
	key := plancache.Key{SQL: norm, Epoch: db.cat.Epoch(), Parallelism: db.Parallelism}
	if v, ok := db.plans.Get(key); ok {
		return v.(*cachedStmt), nil
	}
	st, err := sql.Parse(norm)
	if err != nil {
		return nil, err
	}
	cs := classifyStmt(st.AST, st.NumParams)
	if cs.kind == stmtSelect {
		planner := &sql.Planner{Cat: db.cat}
		plan, err := planner.PlanQuery(st.AST)
		if err != nil {
			return nil, err
		}
		plan = rewriter.SimplifyPlan(plan)
		if db.Parallelism > 1 {
			plan = rewriter.Parallelize(plan, db.cat, db.Parallelism)
		}
		cs.plan = plan
		// The plan template is pure algebra — the arena-backed AST is
		// no longer referenced, so its arena can go back to the pool.
		st.Release()
	}
	db.plans.Put(key, cs)
	return cs, nil
}

// bindArgs boxes Go argument values for parameter binding.
func bindArgs(args []any) ([]vtypes.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]vtypes.Value, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case nil:
			out[i] = vtypes.Value{Null: true}
		case int:
			out[i] = vtypes.I64Value(int64(v))
		case int32:
			out[i] = vtypes.I64Value(int64(v))
		case int64:
			out[i] = vtypes.I64Value(v)
		case uint:
			if uint64(v) > math.MaxInt64 {
				return nil, fmt.Errorf("vectorwise: parameter $%d overflows BIGINT", i+1)
			}
			out[i] = vtypes.I64Value(int64(v))
		case uint32:
			out[i] = vtypes.I64Value(int64(v))
		case uint64:
			if v > math.MaxInt64 {
				return nil, fmt.Errorf("vectorwise: parameter $%d overflows BIGINT", i+1)
			}
			out[i] = vtypes.I64Value(int64(v))
		case float32:
			out[i] = vtypes.F64Value(float64(v))
		case float64:
			out[i] = vtypes.F64Value(v)
		case string:
			out[i] = vtypes.StrValue(v)
		case bool:
			out[i] = vtypes.BoolValue(v)
		case time.Time:
			// DATE parameters bind from time.Time directly (the civil
			// date in the value's own location), so TPC-H-style date
			// predicates need no pre-formatted strings.
			y, m, d := v.Date()
			out[i] = vtypes.Value{Kind: vtypes.KindDate, I64: vtypes.DaysFromCivil(y, int(m), d)}
		case vtypes.Value:
			out[i] = v
		default:
			return nil, fmt.Errorf("vectorwise: unsupported parameter type %T for $%d", a, i+1)
		}
	}
	return out, nil
}

// Exec runs a DDL/DML statement and returns the affected row count.
// Exec serializes under the DB write lock: one DDL/DML statement runs
// at a time, and never concurrently with a SELECT. Each DML statement
// is a single PDT transaction committed (or aborted) before Exec
// returns.
func (db *DB) Exec(sqlText string) (int64, error) {
	return db.ExecArgs(sqlText)
}

// ExecArgs is Exec with `?` / `$N` placeholders bound from args
// (args[0] binds $1). Parsed statements are cached, so repeated
// parametrized DML skips the parser.
func (db *DB) ExecArgs(sqlText string, args ...any) (int64, error) {
	vals, err := bindArgs(args)
	if err != nil {
		return 0, err
	}
	norm := plancache.Normalize(sqlText)
	// Fast path: a cached compilation (read lock only).
	db.mu.RLock()
	v, ok := db.plans.Get(plancache.Key{SQL: norm, Epoch: db.cat.Epoch(), Parallelism: db.Parallelism})
	db.mu.RUnlock()
	var cs *cachedStmt
	if ok {
		cs = v.(*cachedStmt)
	} else {
		// Cold: lex and parse before taking the exclusive lock, so a
		// one-off DML text (bulk INSERT strings, say) never stalls
		// concurrent readers on front-end work.
		st, err := sql.Parse(norm)
		if err != nil {
			return 0, err
		}
		// The AST is retained in the cache artifact, so the arena stays
		// live with it (never released back to the pool).
		cs = classifyStmt(st.AST, st.NumParams)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if !ok && cs.kind == stmtExec {
		db.plans.Put(plancache.Key{SQL: norm, Epoch: db.cat.Epoch(), Parallelism: db.Parallelism}, cs)
	}
	return db.execCachedLocked(cs, vals)
}

// execCachedLocked dispatches a cached DDL/DML compilation under the
// write lock.
func (db *DB) execCachedLocked(cs *cachedStmt, vals []vtypes.Value) (int64, error) {
	if len(vals) != cs.numParams {
		return 0, fmt.Errorf("vectorwise: statement takes %d parameters, got %d", cs.numParams, len(vals))
	}
	switch s := cs.ast.(type) {
	case *sql.CreateStmt:
		return 0, db.execCreateLocked(s)
	case *sql.InsertStmt:
		return db.execInsert(s, vals)
	case *sql.UpdateStmt:
		return db.execUpdate(s, vals)
	case *sql.DeleteStmt:
		return db.execDelete(s, vals)
	case nil: // SELECT caches a plan, not an AST
		return 0, fmt.Errorf("vectorwise: use Query for SELECT")
	case *sql.TxStmt:
		return 0, fmt.Errorf("vectorwise: explicit transactions use Begin()")
	default:
		return 0, fmt.Errorf("vectorwise: unsupported statement %T", cs.ast)
	}
}

// Query runs a SELECT through the full stack: parse → plan → simplify →
// parallelize → cross-compile → vectorized execution, with the front
// half (parse through parallelize) served from the plan cache on
// repeated statements. Any number of queries run concurrently with
// each other and with writers: each pins an immutable epoch snapshot
// of the committed state at start and observes exactly that state,
// while DDL/DML publishes new state without waiting for them.
//
// Query is a collect-all convenience over [DB.QueryContext]: it drains
// the streaming cursor into boxed rows. Large results and cancellable
// statements should use QueryContext directly.
func (db *DB) Query(sqlText string) (*Result, error) {
	return db.QueryArgs(sqlText)
}

// QueryArgs is Query with `?` / `$N` placeholders bound from args
// (args[0] binds $1). The first execution plans a template; repeated
// executions bind typed literals into the cached template and go
// straight to the cross-compiler — no lexing, parsing, or rewriting.
func (db *DB) QueryArgs(sqlText string, args ...any) (*Result, error) {
	rows, err := db.QueryContext(context.Background(), sqlText, args...)
	if err != nil {
		return nil, err
	}
	return rows.collect()
}

// QueryContext runs a SELECT and returns a lazily-executed streaming
// cursor instead of a materialized result: no operator pulls a batch
// until the cursor is consumed, and nothing is ever boxed on the
// NextBatch path. The shared read lock is held only while the statement
// is resolved and compiled; the returned cursor owns a pinned epoch
// snapshot, not a lock — see the Rows type for snapshot tenure and the
// cancellation contract (ctx stops scans, joins, aggregates and
// exchange workers at the next vector boundary). args bind `?` / `$N`
// placeholders.
func (db *DB) QueryContext(ctx context.Context, sqlText string, args ...any) (*Rows, error) {
	vals, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	cs, err := db.getStmtLocked(plancache.Normalize(sqlText))
	if err != nil {
		return nil, err
	}
	return db.rowsCachedLocked(ctx, cs, vals)
}

// rowsCachedLocked binds a cached SELECT compilation and opens a cursor
// over it. The caller holds db.mu.RLock (and releases it itself — the
// cursor owns a pinned snapshot, not the lock).
func (db *DB) rowsCachedLocked(ctx context.Context, cs *cachedStmt, vals []vtypes.Value) (*Rows, error) {
	if cs.kind != stmtSelect {
		return nil, fmt.Errorf("vectorwise: Query requires SELECT")
	}
	if len(vals) != cs.numParams {
		return nil, fmt.Errorf("vectorwise: statement takes %d parameters, got %d", cs.numParams, len(vals))
	}
	plan := cs.plan
	if cs.numParams > 0 {
		var err error
		if plan, err = algebra.BindParams(plan, vals); err != nil {
			return nil, err
		}
	}
	return db.openRowsLocked(ctx, plan)
}

// Explain returns the optimized plan tree of a SELECT: the planner
// output after simplification and — when Parallelism > 1 — the
// Xchange parallelization rewrite, rendered one operator per line.
// Unbound placeholders render as `$N`. Like Query it runs under the
// shared read lock and shares the plan cache.
func (db *DB) Explain(sqlText string) (string, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	cs, err := db.getStmtLocked(plancache.Normalize(sqlText))
	if err != nil {
		return "", err
	}
	if cs.kind != stmtSelect {
		return "", fmt.Errorf("vectorwise: Explain requires SELECT")
	}
	return algebra.Explain(cs.plan), nil
}

// ExplainAnalyze executes a SELECT (binding args to placeholders) and
// returns its optimized plan annotated with runtime scan counters: how
// many row groups the scans decompressed and how many min/max data
// skipping pruned without touching. Unlike [DB.Explain] the rendered
// plan is the bound plan, so parametrized filters show the execution's
// actual bounds.
func (db *DB) ExplainAnalyze(sqlText string, args ...any) (string, error) {
	vals, err := bindArgs(args)
	if err != nil {
		return "", err
	}
	db.mu.RLock()
	cs, err := db.getStmtLocked(plancache.Normalize(sqlText))
	if err != nil {
		db.mu.RUnlock()
		return "", err
	}
	if cs.kind != stmtSelect {
		db.mu.RUnlock()
		return "", fmt.Errorf("vectorwise: ExplainAnalyze requires SELECT")
	}
	plan := cs.plan
	if cs.numParams > 0 {
		if len(vals) != cs.numParams {
			db.mu.RUnlock()
			return "", fmt.Errorf("vectorwise: statement takes %d parameters, got %d", cs.numParams, len(vals))
		}
		if plan, err = algebra.BindParams(plan, vals); err != nil {
			db.mu.RUnlock()
			return "", err
		}
	}
	rows, err := db.openRowsLocked(context.Background(), plan)
	db.mu.RUnlock()
	if err != nil {
		return "", err
	}
	// The cursor owns a pinned snapshot now; drain it fully so the
	// counters cover the whole statement.
	n := 0
	for {
		b, err := rows.NextBatch()
		if err != nil {
			rows.Close()
			return "", err
		}
		if b == nil {
			break
		}
		n += b.N
	}
	st := rows.ScanStats()
	out := fmt.Sprintf("%sscan: groups_scanned=%d groups_pruned=%d rows=%d\n",
		algebra.Explain(plan), st.GroupsScanned, st.GroupsPruned, n)
	// Hash-keyed operators (aggregates, joins) append one line each:
	// table shape, probe-length distribution, and time spent in the
	// table-bound phase.
	for _, h := range rows.HashStats() {
		out += fmt.Sprintf("hash(%s): slots=%d entries=%d load=%.2f resizes=%d probe_p50=%d probe_max=%d phase=%s\n",
			h.Op, h.Slots, h.Entries, h.Load, h.Resizes, h.ProbeP50, h.ProbeMax,
			time.Duration(h.PhaseNs).Round(time.Microsecond))
	}
	return out, nil
}

// Prepare validates and compiles a statement once, returning a handle
// that executes it with bound placeholder values:
//
//	stmt, _ := db.Prepare(`SELECT v FROM t WHERE k = ?`)
//	res, _ := stmt.Query(int64(42))
//
// The compilation lives in the DB's plan cache, so the handle stays
// valid across DDL — a schema-epoch bump simply makes the next
// execution re-plan. Stmt is safe for concurrent use.
func (db *DB) Prepare(sqlText string) (*Stmt, error) {
	norm := plancache.Normalize(sqlText)
	db.mu.RLock()
	epoch, par := db.cat.Epoch(), db.Parallelism
	cs, err := db.getStmtLocked(norm)
	db.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	if cs.kind == stmtTx {
		return nil, fmt.Errorf("vectorwise: cannot prepare transaction control statements")
	}
	s := &Stmt{db: db, sql: norm, kind: cs.kind, numParams: cs.numParams}
	s.cached, s.epoch, s.par = cs, epoch, par
	return s, nil
}

// LookupPrepared returns a prepared handle for sqlText only when its
// compilation is already cached under the current schema epoch — no
// lexing, parsing, or planning happens on a miss. Serving layers use it
// as the pre-admission fast path: warm statements resolve for free,
// cold ones defer compilation until the request holds an execution
// slot.
func (db *DB) LookupPrepared(sqlText string) (*Stmt, bool) {
	norm := plancache.Normalize(sqlText)
	db.mu.RLock()
	epoch, par := db.cat.Epoch(), db.Parallelism
	v, ok := db.plans.Peek(plancache.Key{SQL: norm, Epoch: epoch, Parallelism: par})
	db.mu.RUnlock()
	if !ok {
		return nil, false
	}
	cs := v.(*cachedStmt)
	if cs.kind == stmtTx {
		return nil, false
	}
	s := &Stmt{db: db, sql: norm, kind: cs.kind, numParams: cs.numParams}
	s.cached, s.epoch, s.par = cs, epoch, par
	return s, true
}

// Stmt is a prepared statement bound to a DB. It memoizes the compiled
// form together with the schema epoch and parallelism it was resolved
// under: while those are unchanged, executions bind directly with no
// text normalization or cache lookup at all; after a schema change the
// next execution transparently re-resolves through the plan cache.
type Stmt struct {
	db        *DB
	sql       string
	kind      stmtKind
	numParams int

	// mu guards the memoized resolution below.
	mu     sync.Mutex
	cached *cachedStmt
	epoch  uint64
	par    int
}

// resolveLocked returns the statement's compilation. The caller holds
// the DB lock (read or write), which pins epoch and parallelism for the
// duration of the execution that follows.
func (s *Stmt) resolveLocked() (*cachedStmt, error) {
	epoch, par := s.db.cat.Epoch(), s.db.Parallelism
	s.mu.Lock()
	cs := s.cached
	valid := cs != nil && s.epoch == epoch && s.par == par
	s.mu.Unlock()
	if valid {
		return cs, nil
	}
	cs, err := s.db.getStmtLocked(s.sql)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.cached, s.epoch, s.par = cs, epoch, par
	s.mu.Unlock()
	return cs, nil
}

// NumParams reports how many placeholder values the statement takes.
func (s *Stmt) NumParams() int { return s.numParams }

// SQL returns the normalized statement text the handle executes.
func (s *Stmt) SQL() string { return s.sql }

// IsSelect reports whether the statement is a SELECT (execute with
// Query) as opposed to DDL/DML (execute with Exec).
func (s *Stmt) IsSelect() bool { return s.kind == stmtSelect }

// Query executes a prepared SELECT with args bound to its placeholders,
// collecting the whole result (see Stmt.QueryContext for the streaming
// cursor form).
func (s *Stmt) Query(args ...any) (*Result, error) {
	rows, err := s.QueryContext(context.Background(), args...)
	if err != nil {
		return nil, err
	}
	return rows.collect()
}

// QueryContext executes a prepared SELECT as a streaming cursor: the
// cached plan template is bound and compiled, and the returned Rows
// owns a pinned epoch snapshot until Close. ctx cancels the statement
// between vector batches exactly as in [DB.QueryContext].
func (s *Stmt) QueryContext(ctx context.Context, args ...any) (*Rows, error) {
	if s.kind != stmtSelect {
		return nil, fmt.Errorf("vectorwise: prepared statement is not a SELECT; use Exec")
	}
	vals, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	cs, err := s.resolveLocked()
	if err != nil {
		return nil, err
	}
	return s.db.rowsCachedLocked(ctx, cs, vals)
}

// Exec executes a prepared DDL/DML statement with args bound to its
// placeholders, returning the affected row count.
func (s *Stmt) Exec(args ...any) (int64, error) {
	if s.kind == stmtSelect {
		return 0, fmt.Errorf("vectorwise: prepared statement is a SELECT; use Query")
	}
	vals, err := bindArgs(args)
	if err != nil {
		return 0, err
	}
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	cs, err := s.resolveLocked()
	if err != nil {
		return 0, err
	}
	return s.db.execCachedLocked(cs, vals)
}

// PlanCacheStats snapshots the plan cache's hit/miss/eviction counters.
func (db *DB) PlanCacheStats() plancache.Stats { return db.plans.Stats() }

// SetPlanCacheCapacity resizes the plan cache; 0 disables caching so
// every statement re-plans (the configuration BenchmarkPreparedVsAdHoc
// measures against). Safe to call concurrently with queries.
func (db *DB) SetPlanCacheCapacity(n int) { db.plans.Resize(n) }

// execCreateLocked runs CREATE TABLE. Callers hold the db.mu write
// lock (execCachedLocked dispatches under it) — which registerTable
// requires, hence the suffix.
func (db *DB) execCreateLocked(s *sql.CreateStmt) error {
	if _, err := db.cat.Get(s.Table); err == nil {
		return fmt.Errorf("vectorwise: table %q already exists", s.Table)
	}
	var cols []vtypes.Column
	for _, c := range s.Cols {
		var k vtypes.Kind
		switch c.Type {
		case "BIGINT":
			k = vtypes.KindI64
		case "DOUBLE":
			k = vtypes.KindF64
		case "VARCHAR":
			k = vtypes.KindStr
		case "BOOLEAN":
			k = vtypes.KindBool
		case "DATE":
			k = vtypes.KindDate
		default:
			return fmt.Errorf("vectorwise: unsupported type %q", c.Type)
		}
		cols = append(cols, vtypes.Column{Name: strings.ToLower(c.Name), Kind: k, Nullable: c.Nullable})
	}
	b := storage.NewBuilder(s.Table, &vtypes.Schema{Cols: cols}, 0)
	t, err := b.Finish()
	if err != nil {
		return err
	}
	db.registerTableLocked(t)
	return db.persistTable(s.Table)
}

func (db *DB) execInsert(s *sql.InsertStmt, params []vtypes.Value) (int64, error) {
	ent, err := db.cat.Get(s.Table)
	if err != nil {
		return 0, err
	}
	schema := ent.Table.Schema()
	tx := db.txm.Begin()
	planner := &sql.Planner{Cat: db.cat, Params: params}
	for _, rowExprs := range s.Rows {
		if len(rowExprs) != schema.Len() {
			tx.Abort()
			return 0, fmt.Errorf("vectorwise: INSERT arity %d != %d", len(rowExprs), schema.Len())
		}
		row := make(vtypes.Row, schema.Len())
		for c, e := range rowExprs {
			v, err := planner.LowerLiteral(e, schema.Col(c).Kind)
			if err != nil {
				tx.Abort()
				return 0, err
			}
			row[c] = v
		}
		if err := tx.Insert(s.Table, row); err != nil {
			tx.Abort()
			return 0, err
		}
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	if err := db.refreshLayers(s.Table); err != nil {
		return 0, err
	}
	return int64(len(s.Rows)), nil
}

// matchingRIDs scans a table in a transaction and returns the RIDs whose
// rows satisfy pred (nil = all).
func (db *DB) matchingRIDs(tx *txn.Txn, table string, pred algebra.Scalar) ([]int64, error) {
	src, schema, err := tx.Scan(table, 0)
	if err != nil {
		return nil, err
	}
	_ = schema
	var rids []int64
	var rid int64
	for {
		cols, n, err := src.Next()
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return rids, nil
		}
		for i := 0; i < n; i++ {
			if pred == nil {
				rids = append(rids, rid)
				rid++
				continue
			}
			row := make(vtypes.Row, len(cols))
			for c, v := range cols {
				row[c] = v.Get(i)
			}
			v, err := tupleengine.EvalRow(pred, row)
			if err != nil {
				return nil, err
			}
			if !v.Null && v.B {
				rids = append(rids, rid)
			}
			rid++
		}
	}
}

func (db *DB) execUpdate(s *sql.UpdateStmt, params []vtypes.Value) (int64, error) {
	ent, err := db.cat.Get(s.Table)
	if err != nil {
		return 0, err
	}
	schema := ent.Table.Schema()
	planner := &sql.Planner{Cat: db.cat, Params: params}
	var pred algebra.Scalar
	if s.Where != nil {
		pred, err = planner.LowerOnTable(s.Where, schema)
		if err != nil {
			return 0, err
		}
	}
	tx := db.txm.Begin()
	rids, err := db.matchingRIDs(tx, s.Table, pred)
	if err != nil {
		tx.Abort()
		return 0, err
	}
	for _, rid := range rids {
		for si, colName := range s.SetCols {
			ci := schema.ColIndex(colName)
			if ci < 0 {
				tx.Abort()
				return 0, fmt.Errorf("vectorwise: unknown column %q", colName)
			}
			// SET expressions may reference the current row.
			valExpr, err := planner.LowerSet(s.SetExprs[si], schema, schema.Col(ci).Kind)
			if err != nil {
				tx.Abort()
				return 0, err
			}
			row, err := tx.RowAt(s.Table, rid)
			if err != nil {
				tx.Abort()
				return 0, err
			}
			v, err := tupleengine.EvalRow(valExpr, row)
			if err != nil {
				tx.Abort()
				return 0, err
			}
			if v, err = algebra.CoerceValue(v, schema.Col(ci).Kind); err != nil {
				tx.Abort()
				return 0, err
			}
			if err := tx.Update(s.Table, rid, ci, v); err != nil {
				tx.Abort()
				return 0, err
			}
		}
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	if err := db.refreshLayers(s.Table); err != nil {
		return 0, err
	}
	return int64(len(rids)), nil
}

func (db *DB) execDelete(s *sql.DeleteStmt, params []vtypes.Value) (int64, error) {
	ent, err := db.cat.Get(s.Table)
	if err != nil {
		return 0, err
	}
	schema := ent.Table.Schema()
	planner := &sql.Planner{Cat: db.cat, Params: params}
	var pred algebra.Scalar
	if s.Where != nil {
		pred, err = planner.LowerOnTable(s.Where, schema)
		if err != nil {
			return 0, err
		}
	}
	tx := db.txm.Begin()
	rids, err := db.matchingRIDs(tx, s.Table, pred)
	if err != nil {
		tx.Abort()
		return 0, err
	}
	// Delete back to front so earlier RIDs stay valid.
	for i := len(rids) - 1; i >= 0; i-- {
		if err := tx.Delete(s.Table, rids[i]); err != nil {
			tx.Abort()
			return 0, err
		}
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	if err := db.refreshLayers(s.Table); err != nil {
		return 0, err
	}
	return int64(len(rids)), nil
}

// Checkpoint folds a table's committed deltas (big PDT and all tail
// layers) into a fresh stable image stamped with its applied-LSN
// watermark, persists it (when the DB is disk-backed), and truncates
// the WAL once every table's deltas are materialized. It holds the DB
// write lock for the duration, which supplies the quiescence the
// transaction manager's checkpoint requires. Open cursors are
// unaffected — they stream their pinned snapshots.
func (db *DB) Checkpoint(table string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked(table)
}

// checkpointLocked is Checkpoint for callers already holding the write
// lock (the bulk loader folds sibling tables before resetting the WAL).
// Durability order matters: the rebuilt image is persisted before the
// WAL is touched, and the truncation only happens when no table has
// unpersisted deltas — a crash between the two replays records the new
// image's watermark already makes inert, which is harmless.
func (db *DB) checkpointLocked(table string) error {
	if err := db.txm.Checkpoint(table); err != nil {
		return err
	}
	pin, err := db.txm.Pin(table)
	if err != nil {
		return err
	}
	db.cat.Put(pin.Stable)
	if err := db.refreshLayers(table); err != nil {
		return err
	}
	if err := db.persistTable(table); err != nil {
		return err
	}
	return db.txm.TruncateWALIfClean()
}

// persistTable writes a table file when disk-backed.
func (db *DB) persistTable(table string) error {
	if db.dir == "" {
		return nil
	}
	ent, err := db.cat.Get(table)
	if err != nil {
		return err
	}
	return ent.Table.Save(filepath.Join(db.dir, table+".vwt"))
}

// Analyze refreshes optimizer statistics for all tables. It takes the
// write lock because it mutates cataloged entries in place
// (Entry.Stats), which must not race with anything traversing the
// catalog.
func (db *DB) Analyze() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.cat.AnalyzeAll()
}
