package vectorwise

// Mixed-workload soak: the test that pins the epoch-snapshot + tuple-
// mover concurrency contract. A deliberately slow streaming reader
// coexists with a pack of concurrent writers and an active background
// mover; the reader must neither block the writers nor observe any
// state other than its pinned epoch, and writes must stay fast (their
// latency distribution is recorded). Run under -race in CI.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"
)

// soakWriters / soakWritesPerWriter size the write storm; each write is
// one Exec inserting the same key twice, so a torn read is detectable
// as an odd per-key multiplicity.
const (
	soakWriters         = 20
	soakWritesPerWriter = 15
	soakBaseRows        = 20000
	soakKeyBase         = 1_000_000
)

func soakKey(writer, iter int) int64 {
	return soakKeyBase + int64(writer)*1000 + int64(iter)
}

// percentile returns the p-th percentile (0 < p <= 100) of sorted durations.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(float64(len(sorted)-1) * p / 100)
	return sorted[i]
}

func TestMixedWorkloadSoak(t *testing.T) {
	db := rowsTestDB(t, soakBaseRows)
	defer db.Close()
	// Aggressive mover: short tick, tiny rebuild threshold, so folds
	// and stable-image swaps happen repeatedly during the storm.
	db.SetMoverThreshold(64)
	db.SetMoverInterval(2 * time.Millisecond)
	defer db.SetMoverInterval(0)

	// Slow streaming reader: pins its epoch before any soak write
	// commits, then dribbles batches with sleeps while the storm runs.
	// It must see exactly the base fixture — count and content — and
	// never a soak key.
	readerPinned := make(chan uint64, 1)
	readerDone := make(chan error, 1)
	writersStart := make(chan struct{})
	var writersDone sync.WaitGroup
	go func() {
		readerDone <- func() error {
			rows, err := db.QueryContext(context.Background(), `SELECT k FROM pts`)
			if err != nil {
				return err
			}
			defer rows.Close()
			readerPinned <- rows.Epoch()
			<-writersStart
			var n int64
			for {
				b, err := rows.NextBatch()
				if err != nil {
					return err
				}
				if b == nil {
					break
				}
				for i := 0; i < b.N; i++ {
					if k := b.Vecs[0].I64[b.LiveIndex(i)]; k >= soakKeyBase {
						return fmt.Errorf("slow reader saw soak key %d from a later epoch", k)
					}
				}
				n += int64(b.N)
				time.Sleep(3 * time.Millisecond)
			}
			if n != soakBaseRows {
				return fmt.Errorf("slow reader saw %d rows, want %d (pinned epoch torn)", n, soakBaseRows)
			}
			return nil
		}()
	}()
	pinnedEpoch := <-readerPinned

	// Writers: each Exec inserts its key twice atomically. Latencies
	// are collected for the p50/p99 report.
	latCh := make(chan time.Duration, soakWriters*soakWritesPerWriter)
	writeErr := make(chan error, soakWriters)
	writersDone.Add(soakWriters)
	start := time.Now()
	for w := 0; w < soakWriters; w++ {
		go func(w int) {
			defer writersDone.Done()
			for i := 0; i < soakWritesPerWriter; i++ {
				k := soakKey(w, i)
				stmt := fmt.Sprintf(`INSERT INTO pts VALUES (%d, 1.5, 'w'), (%d, 2.5, 'w')`, k, k)
				t0 := time.Now()
				if _, err := db.Exec(stmt); err != nil {
					writeErr <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
				latCh <- time.Since(t0)
			}
		}(w)
	}
	close(writersStart)

	// Verifier: while the storm runs, repeatedly pin fresh snapshots
	// and check atomicity (every soak key appears 0 or 2 times — a torn
	// read of a half-applied statement would show 1) and epoch
	// stability (two cursors at the same epoch count the same rows).
	verifyErr := make(chan error, 1)
	verifyStop := make(chan struct{})
	go func() {
		verifyErr <- func() error {
			var lastEpoch, lastCount uint64
			for {
				select {
				case <-verifyStop:
					return nil
				default:
				}
				rows, err := db.QueryContext(context.Background(), `SELECT k FROM pts WHERE k >= 1000000`)
				if err != nil {
					return err
				}
				counts := make(map[int64]int)
				var total uint64
				for {
					b, err := rows.NextBatch()
					if err != nil {
						return err
					}
					if b == nil {
						break
					}
					for i := 0; i < b.N; i++ {
						counts[b.Vecs[0].I64[b.LiveIndex(i)]]++
					}
					total += uint64(b.N)
				}
				for k, c := range counts {
					if c != 2 {
						return fmt.Errorf("torn read: soak key %d appears %d times (want 2)", k, c)
					}
				}
				if e := rows.Epoch(); e == lastEpoch && total != lastCount {
					return fmt.Errorf("epoch %d reported %d then %d rows", e, lastCount, total)
				} else {
					lastEpoch, lastCount = e, total
				}
			}
		}()
	}()

	writersDone.Wait()
	elapsed := time.Since(start)
	close(latCh)
	close(verifyStop)
	select {
	case err := <-writeErr:
		t.Fatal(err)
	default:
	}
	if err := <-verifyErr; err != nil {
		t.Fatal(err)
	}
	if err := <-readerDone; err != nil {
		t.Fatal(err)
	}

	// Latency report: the whole point of snapshot reads is that writers
	// never queue behind a slow cursor.
	var lats []time.Duration
	for d := range latCh {
		lats = append(lats, d)
	}
	if len(lats) != soakWriters*soakWritesPerWriter {
		t.Fatalf("collected %d write latencies, want %d", len(lats), soakWriters*soakWritesPerWriter)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	t.Logf("soak: %d writes in %v; write latency p50=%v p99=%v max=%v; mover=%+v",
		len(lats), elapsed, percentile(lats, 50), percentile(lats, 99), lats[len(lats)-1], db.MoverStats())

	// Final state: exactly the base fixture plus every soak write, at a
	// newer epoch than the slow reader pinned.
	if db.Epoch() == pinnedEpoch {
		t.Fatal("data epoch never advanced during the write storm")
	}
	res, err := db.Query(`SELECT COUNT(*) FROM pts`)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(soakBaseRows + 2*soakWriters*soakWritesPerWriter)
	if got := res.Rows[0][0].I64; got != want {
		t.Fatalf("final row count %d, want %d", got, want)
	}
	// The mover must have actually moved tuples. One more insert
	// guarantees a tail layer exists, so the manual pass must fold it;
	// and if no stable rebuild happened live, the big PDT now holds the
	// whole storm — far past the tiny threshold — so the pass must
	// rebuild too. Either way both counters end nonzero,
	// deterministically.
	if _, err := db.Exec(fmt.Sprintf(`INSERT INTO pts VALUES (%d, 0.5, 'w'), (%d, 0.5, 'w')`,
		soakKeyBase-1, soakKeyBase-1)); err != nil {
		t.Fatal(err)
	}
	want += 2
	if err := db.MoveTuples(); err != nil {
		t.Fatal(err)
	}
	st := db.MoverStats()
	if st.Folds == 0 {
		t.Fatalf("mover never folded a tail stack: %+v", st)
	}
	if st.Rebuilds == 0 {
		t.Fatalf("mover never rebuilt the stable image: %+v", st)
	}
	res, err = db.Query(`SELECT COUNT(*) FROM pts`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].I64; got != want {
		t.Fatalf("row count after final mover pass %d, want %d", got, want)
	}
}
