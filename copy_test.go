package vectorwise

import (
	"path/filepath"
	"strings"
	"testing"
)

func copyFixture(t *testing.T) *DB {
	t.Helper()
	db := OpenMemory()
	mustExec(t, db, `CREATE TABLE readings (sensor VARCHAR, ts DATE, val DOUBLE NULL, ok BOOLEAN, n BIGINT)`)
	return db
}

func count(t *testing.T, db *DB, table string) int64 {
	t.Helper()
	res, err := db.Query(`SELECT COUNT(*) FROM ` + table)
	if err != nil {
		t.Fatal(err)
	}
	return res.Rows[0][0].I64
}

func TestCopyFromBasicAndAppend(t *testing.T) {
	db := copyFixture(t)
	n, err := db.CopyFrom("readings", strings.NewReader(
		"a,2011-01-01,1.5,true,1\n"+
			"b,2011-01-02,2.5,false,2\n"), CopyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || count(t, db, "readings") != 2 {
		t.Fatalf("n=%d count=%d", n, count(t, db, "readings"))
	}
	// A second load appends; existing rows (including PDT deltas from
	// row-wise DML) are preserved.
	mustExec(t, db, `INSERT INTO readings VALUES ('c', DATE '2011-01-03', 3.5, TRUE, 3)`)
	if _, err := db.CopyFrom("readings", strings.NewReader("d,2011-01-04,4.5,f,4\n"), CopyOptions{}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT sensor, SUM(val) s FROM readings GROUP BY sensor ORDER BY sensor`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 || res.Rows[2][0].Str != "c" || res.Rows[3][1].F64 != 4.5 {
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestCopyFromQuotingAndHeader(t *testing.T) {
	db := copyFixture(t)
	csvText := "sensor,ts,val,ok,n\n" +
		"\"a,comma\",2011-01-01,1,1,1\n" +
		"\"quote \"\" inside\",2011-01-02,2,0,2\n" +
		"\"line\nbreak\",2011-01-03,3,t,3\n"
	n, err := db.CopyFrom("readings", strings.NewReader(csvText), CopyOptions{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("n=%d", n)
	}
	res, err := db.Query(`SELECT sensor FROM readings ORDER BY n`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a,comma", `quote " inside`, "line\nbreak"}
	for i, w := range want {
		if res.Rows[i][0].Str != w {
			t.Fatalf("row %d: %q != %q", i, res.Rows[i][0].Str, w)
		}
	}
}

func TestCopyFromNullsAndDelimiter(t *testing.T) {
	db := copyFixture(t)
	// Custom delimiter and NULL token; val is the only nullable column.
	n, err := db.CopyFrom("readings", strings.NewReader(
		"a|2011-01-01|\\N|true|1\n"+
			"b|2011-01-02|2.5|true|2\n"), CopyOptions{Comma: '|', Null: `\N`})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("n=%d", n)
	}
	res, err := db.Query(`SELECT COUNT(*) FROM readings WHERE val IS NULL`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I64 != 1 {
		t.Fatalf("null count: %v", res.Rows)
	}
	// The NULL token in a non-nullable column is a parse error, not NULL.
	_, err = db.CopyFrom("readings", strings.NewReader("c|2011-01-03|1||3\n"), CopyOptions{Comma: '|'})
	if err == nil || !strings.Contains(err.Error(), `"ok"`) {
		t.Fatalf("want BOOLEAN parse error on ok, got %v", err)
	}
}

func TestCopyFromRejectsBadRowsAtomically(t *testing.T) {
	db := copyFixture(t)
	if _, err := db.CopyFrom("readings", strings.NewReader("a,2011-01-01,1,1,1\n"), CopyOptions{}); err != nil {
		t.Fatal(err)
	}
	epoch := db.Catalog().Epoch()
	cases := []struct{ csv, want string }{
		{"b,2011-01-02,2,1,not-a-number\n", "line 1"},           // type mismatch, line named
		{"b,2011-01-02,2,1\n", "record on line 1"},              // arity
		{"ok,2011-01-03,3,1,3\nb,not-a-date,2,1,2\n", "line 2"}, // later line named
		{"b,2011-01-02,2,maybe,2\n", "BOOLEAN"},                 // bad bool
	}
	for _, tc := range cases {
		if _, err := db.CopyFrom("readings", strings.NewReader(tc.csv), CopyOptions{}); err == nil ||
			!strings.Contains(err.Error(), tc.want) {
			t.Fatalf("csv %q: want error containing %q, got %v", tc.csv, tc.want, err)
		}
	}
	// A failed load leaves no trace: same rows, same schema epoch.
	if got := count(t, db, "readings"); got != 1 {
		t.Fatalf("failed loads must not change the table: count=%d", got)
	}
	if db.Catalog().Epoch() != epoch {
		t.Fatal("failed loads must not bump the schema epoch")
	}
	// Unknown table.
	if _, err := db.CopyFrom("nope", strings.NewReader("x\n"), CopyOptions{}); err == nil {
		t.Fatal("unknown table must error")
	}
}

func TestCopyFromEmptyInput(t *testing.T) {
	db := copyFixture(t)
	if n, err := db.CopyFrom("readings", strings.NewReader(""), CopyOptions{}); err != nil || n != 0 {
		t.Fatalf("empty input: n=%d err=%v", n, err)
	}
	if n, err := db.CopyFrom("readings", strings.NewReader("sensor,ts,val,ok,n\n"), CopyOptions{Header: true}); err != nil || n != 0 {
		t.Fatalf("header only: n=%d err=%v", n, err)
	}
	if count(t, db, "readings") != 0 {
		t.Fatal("empty loads must not add rows")
	}
}

func TestLoadBatchColumnarPath(t *testing.T) {
	db := OpenMemory()
	mustExec(t, db, `CREATE TABLE m (k BIGINT, v DOUBLE NULL, tag VARCHAR)`)
	const rows = 10000
	ks := make([]int64, rows)
	vs := make([]float64, rows)
	tags := make([]string, rows)
	vnulls := make([]bool, rows)
	for i := range ks {
		ks[i] = int64(i)
		vs[i] = float64(i)
		tags[i] = [2]string{"x", "y"}[i%2]
		vnulls[i] = i%100 == 0
	}
	n, err := db.LoadBatch("m", []any{ks, vs, tags}, [][]bool{nil, vnulls, nil})
	if err != nil {
		t.Fatal(err)
	}
	if n != rows {
		t.Fatalf("n=%d", n)
	}
	res, err := db.Query(`SELECT tag, COUNT(*) c, SUM(v) s FROM m WHERE v IS NOT NULL GROUP BY tag ORDER BY tag`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][1].I64+res.Rows[1][1].I64 != rows-100 {
		t.Fatalf("rows: %v", res.Rows)
	}
	// Statistics were refreshed by the load.
	ent, err := db.Catalog().Get("m")
	if err != nil {
		t.Fatal(err)
	}
	if ent.Stats == nil || ent.Stats.Rows != rows {
		t.Fatalf("stats not refreshed: %+v", ent.Stats)
	}
	// A class mismatch is rejected with the table untouched.
	if _, err := db.LoadBatch("m", []any{vs, vs, tags}, nil); err == nil {
		t.Fatal("class mismatch must error")
	}
	if count(t, db, "m") != rows {
		t.Fatal("failed batch must not change the table")
	}
}

// Bulk loads on a disk-backed DB survive reopen, and the WAL reset at
// the load boundary must not lose other tables' committed DML.
func TestCopyFromDurability(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE a (k BIGINT, s VARCHAR)`)
	mustExec(t, db, `CREATE TABLE b (k BIGINT)`)
	mustExec(t, db, `INSERT INTO b VALUES (7), (8)`) // lives in the WAL only
	if _, err := db.CopyFrom("a", strings.NewReader("1,x\n2,y\n3,z\n"), CopyOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := count(t, db2, "a"); got != 3 {
		t.Fatalf("a: %d rows after reopen", got)
	}
	if got := count(t, db2, "b"); got != 2 {
		t.Fatalf("b: %d rows after reopen (WAL reset lost committed DML)", got)
	}
}
