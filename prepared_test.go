package vectorwise

import (
	"strings"
	"testing"
)

func preparedFixture(t *testing.T) *DB {
	t.Helper()
	db := OpenMemory()
	mustExec(t, db, `CREATE TABLE acct (k BIGINT, bal DOUBLE, owner VARCHAR, opened DATE)`)
	mustExec(t, db, `INSERT INTO acct VALUES
		(1, 100.5, 'ada', DATE '2011-01-01'),
		(2, 250.0, 'bob', DATE '2011-06-15'),
		(3,  75.25, 'eve', DATE '2012-03-09'),
		(4, 500.0, 'ada', DATE '2012-11-30')`)
	return db
}

func TestPreparedSelectBindsAndReuses(t *testing.T) {
	db := preparedFixture(t)
	stmt, err := db.Prepare(`SELECT owner, bal FROM acct WHERE k = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams() != 1 || !stmt.IsSelect() {
		t.Fatalf("stmt meta: params=%d select=%v", stmt.NumParams(), stmt.IsSelect())
	}
	base := db.PlanCacheStats()
	for i, want := range []struct {
		k     int64
		owner string
		bal   float64
	}{{1, "ada", 100.5}, {2, "bob", 250.0}, {3, "eve", 75.25}} {
		res, err := stmt.Query(want.k)
		if err != nil {
			t.Fatalf("bind %d: %v", i, err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].Str != want.owner || res.Rows[0][1].F64 != want.bal {
			t.Fatalf("k=%d: %v", want.k, res.Rows)
		}
	}
	// A prepared handle memoizes its compilation: bound executions do
	// not re-plan (no misses) — they do not even re-consult the cache
	// while the schema epoch is unchanged (no hits either).
	st := db.PlanCacheStats()
	if st.Misses != base.Misses {
		t.Fatalf("bound executions re-planned: %+v vs %+v", st, base)
	}
	if st.Hits != base.Hits {
		t.Fatalf("bound executions re-resolved the cache: %+v vs %+v", st, base)
	}
	// After DDL the handle re-resolves once, then memoizes again.
	mustExec(t, db, `CREATE TABLE ddl_bump (x BIGINT)`)
	mid := db.PlanCacheStats()
	if _, err := stmt.Query(int64(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Query(int64(2)); err != nil {
		t.Fatal(err)
	}
	end := db.PlanCacheStats()
	if end.Misses != mid.Misses+1 {
		t.Fatalf("stale handle should re-plan exactly once: %+v vs %+v", end, mid)
	}
}

// TestBoundDMLCoercionMatchesSelect pins the contract that a bound
// parameter means the same thing in DML as in a SELECT template: both
// coerce to the kind the expression resolves (floats truncate beside
// BIGINT, strings parse beside DATE).
func TestBoundDMLCoercionMatchesSelect(t *testing.T) {
	db := preparedFixture(t)
	sel, err := db.QueryArgs(`SELECT COUNT(*) n FROM acct WHERE k = ?`, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	matched := sel.Rows[0][0].I64
	if matched != 1 { // 1.5 truncates to k = 1
		t.Fatalf("SELECT with float param matched %d rows", matched)
	}
	n, err := db.ExecArgs(`UPDATE acct SET bal = 0 WHERE k = ?`, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if n != matched {
		t.Fatalf("UPDATE matched %d rows, SELECT matched %d — bound DML diverges", n, matched)
	}
	// String → DATE coercion on the DML path.
	if n, err := db.ExecArgs(`DELETE FROM acct WHERE opened = ?`, "2012-03-09"); err != nil || n != 1 {
		t.Fatalf("DELETE with string date param: n=%d err=%v", n, err)
	}
	// Bare placeholder SET adopts the column kind.
	if n, err := db.ExecArgs(`UPDATE acct SET bal = ? WHERE k = ?`, 7, 2); err != nil || n != 1 {
		t.Fatalf("SET ?: n=%d err=%v", n, err)
	}
	res, err := db.QueryArgs(`SELECT bal FROM acct WHERE k = ?`, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].F64 != 7 {
		t.Fatalf("int param did not widen into DOUBLE column: %v", res.Rows)
	}
}

func TestTransparentCacheOnQueryArgs(t *testing.T) {
	db := preparedFixture(t)
	base := db.PlanCacheStats()
	for i := 0; i < 4; i++ {
		res, err := db.QueryArgs(`SELECT bal FROM acct WHERE k = ?`, int64(i%3+1))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("iter %d: %v", i, res.Rows)
		}
	}
	st := db.PlanCacheStats()
	if st.Misses-base.Misses != 1 || st.Hits-base.Hits != 3 {
		t.Fatalf("want 1 miss + 3 hits, got %+v (base %+v)", st, base)
	}
	// Textual variants normalize onto the same entry.
	if _, err := db.QueryArgs("SELECT  bal  FROM acct WHERE k = ?;", int64(2)); err != nil {
		t.Fatal(err)
	}
	if got := db.PlanCacheStats(); got.Misses != st.Misses {
		t.Fatalf("normalized variant missed the cache: %+v", got)
	}
}

func TestPreparedParamShapes(t *testing.T) {
	db := preparedFixture(t)

	// BETWEEN with placeholders decomposes into bound comparisons.
	res, err := db.QueryArgs(`SELECT k FROM acct WHERE bal BETWEEN ? AND ? ORDER BY k`, 100, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].I64 != 1 || res.Rows[1][0].I64 != 2 {
		t.Fatalf("between: %v", res.Rows)
	}

	// IN with placeholders; string and repeated $1 binding.
	res, err = db.QueryArgs(`SELECT COUNT(*) n FROM acct WHERE owner IN ($1, $2)`, "ada", "eve")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I64 != 3 {
		t.Fatalf("in: %v", res.Rows)
	}

	// Date parameters bind from strings; int widens beside DOUBLE.
	res, err = db.QueryArgs(`SELECT COUNT(*) n FROM acct WHERE opened >= ? AND bal > ?`, "2012-01-01", 80)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I64 != 1 {
		t.Fatalf("date+widen: %v", res.Rows)
	}

	// Parameters in projections adopt the sibling kind.
	res, err = db.QueryArgs(`SELECT bal * ? FROM acct WHERE k = ?`, 2.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].F64 != 201.0 {
		t.Fatalf("arith param: %v", res.Rows)
	}
}

func TestPreparedDML(t *testing.T) {
	db := preparedFixture(t)
	ins, err := db.Prepare(`INSERT INTO acct VALUES (?, ?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	if ins.IsSelect() || ins.NumParams() != 4 {
		t.Fatalf("insert meta: %+v", ins)
	}
	if n, err := ins.Exec(5, 10.0, "sam", "2013-01-01"); err != nil || n != 1 {
		t.Fatalf("insert exec: %d %v", n, err)
	}
	upd, err := db.Prepare(`UPDATE acct SET bal = bal + ? WHERE owner = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := upd.Exec(1.5, "ada"); err != nil || n != 2 {
		t.Fatalf("update exec: %d %v", n, err)
	}
	del, err := db.Prepare(`DELETE FROM acct WHERE k = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := del.Exec(5); err != nil || n != 1 {
		t.Fatalf("delete exec: %d %v", n, err)
	}
	res, err := db.QueryArgs(`SELECT SUM(bal) s FROM acct WHERE owner = ?`, "ada")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].F64 != 100.5+500.0+3.0 {
		t.Fatalf("post-DML sum: %v", res.Rows)
	}
}

func TestPreparedErrors(t *testing.T) {
	db := preparedFixture(t)
	stmt, err := db.Prepare(`SELECT k FROM acct WHERE k = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Query(); err == nil || !strings.Contains(err.Error(), "1 parameter") {
		t.Fatalf("missing arg: %v", err)
	}
	if _, err := stmt.Query(1, 2); err == nil {
		t.Fatal("extra arg accepted")
	}
	if _, err := stmt.Exec(1); err == nil {
		t.Fatal("Exec on SELECT accepted")
	}
	if _, err := db.QueryArgs(`SELECT k FROM acct WHERE k = ?`, []int{1}); err == nil {
		t.Fatal("slice param accepted")
	}
	if _, err := db.Prepare(`BEGIN`); err == nil {
		t.Fatal("prepared transaction control accepted")
	}
	if _, err := db.QueryArgs(`SELECT k FROM acct WHERE ? = ?`, 1, 1); err == nil {
		t.Fatal("param-param comparison must fail kind inference")
	}
	// Unknown tables fail at prepare time for SELECT.
	if _, err := db.Prepare(`SELECT x FROM missing`); err == nil {
		t.Fatal("prepare against missing table accepted")
	}
}

// TestPlanCacheInvalidation proves a cached plan is not reused once the
// schema epoch moves: DDL, Checkpoint and Analyze each strand the old
// entry (structural invalidation, not purging).
func TestPlanCacheInvalidation(t *testing.T) {
	db := preparedFixture(t)
	const q = `SELECT COUNT(*) n FROM acct WHERE k >= $1`

	// run executes q once and reports whether that single lookup hit
	// or re-planned (delta-based: other statements also touch the
	// counters).
	run := func(arg int64, wantRows int64) (hit, miss uint64) {
		t.Helper()
		before := db.PlanCacheStats()
		res, err := db.QueryArgs(q, arg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].I64 != wantRows {
			t.Fatalf("rows: %v", res.Rows)
		}
		after := db.PlanCacheStats()
		return after.Hits - before.Hits, after.Misses - before.Misses
	}

	if hit, miss := run(1, 4); hit != 0 || miss != 1 {
		t.Fatalf("cold run: hit=%d miss=%d", hit, miss)
	}
	if hit, miss := run(1, 4); hit != 1 || miss != 0 {
		t.Fatalf("warm run not served from cache: hit=%d miss=%d", hit, miss)
	}

	// DDL bumps the epoch: the next execution must re-plan.
	mustExec(t, db, `CREATE TABLE other (x BIGINT)`)
	if hit, miss := run(1, 4); hit != 0 || miss != 1 {
		t.Fatalf("DDL did not invalidate: hit=%d miss=%d", hit, miss)
	}

	// Checkpoint folds deltas into a new stable image (row-group
	// layout can change) — must also re-plan.
	if err := db.Checkpoint("acct"); err != nil {
		t.Fatal(err)
	}
	if hit, miss := run(1, 4); hit != 0 || miss != 1 {
		t.Fatalf("Checkpoint did not invalidate: hit=%d miss=%d", hit, miss)
	}

	// Analyze refreshes optimizer statistics — must also re-plan.
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	if hit, miss := run(1, 4); hit != 0 || miss != 1 {
		t.Fatalf("Analyze did not invalidate: hit=%d miss=%d", hit, miss)
	}

	// Plain DML must NOT invalidate: plans re-resolve PDT layers at
	// execution, so the cache keeps serving (and sees fresh rows).
	mustExec(t, db, `INSERT INTO acct VALUES (9, 1.0, 'zed', DATE '2013-01-01')`)
	if hit, miss := run(9, 1); hit != 1 || miss != 0 {
		t.Fatalf("DML invalidated the cache: hit=%d miss=%d", hit, miss)
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	db := preparedFixture(t)
	db.SetPlanCacheCapacity(0)
	for i := 0; i < 3; i++ {
		if _, err := db.QueryArgs(`SELECT k FROM acct WHERE k = ?`, 1); err != nil {
			t.Fatal(err)
		}
	}
	st := db.PlanCacheStats()
	if st.Hits != 0 || st.Entries != 0 {
		t.Fatalf("disabled cache served hits: %+v", st)
	}
}

func TestExplainWithPlaceholders(t *testing.T) {
	db := preparedFixture(t)
	plan, err := db.Explain(`SELECT owner FROM acct WHERE k = $1`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "$1") {
		t.Fatalf("placeholder missing from template plan:\n%s", plan)
	}
	if !strings.Contains(plan, "Scan acct") {
		t.Fatalf("plan shape:\n%s", plan)
	}
}
