package vectorwise

// The background tuple mover: the write side's counterpart to epoch
// snapshots. Commits are cheap — each installs its rebased small PDT as
// a new tail layer in O(own writes) — so somebody else must keep the
// layer stack short and the deltas small. The mover is that somebody,
// in the mold of Vertica's WOS→ROS tuple mover (C-Store 7 Years Later):
//
//  1. Fold: propagate the committed tail layers into the big PDT
//     (pdt.Propagate), off-line on a pinned state; install the result
//     under a short write-lock window. Scans drop from an N-layer merge
//     chain back to stable+big.
//  2. Rebuild: once the big PDT crosses a size threshold, merge it into
//     a fresh stable image off-line, persist the image (crash-atomic
//     rename) stamped with its applied-LSN watermark, and swap it in
//     under the same short write-lock window. WAL records the image
//     absorbed become inert at recovery (LSN <= watermark), so no WAL
//     truncation needs to be atomic with the swap.
//
// Both installs verify the pinned base generation and abandon on a
// concurrent reorganization (counted as a retry; the next tick starts
// over). Readers never wait: off-line work happens on immutable pinned
// state, and the write-lock window is a few pointer swaps.

import (
	"fmt"
	"path/filepath"
	"time"

	"vectorwise/internal/storage"
	"vectorwise/internal/txn"
)

// DefaultMoverInterval is the tick of the background mover started by
// [Open]. [OpenMemory] starts with the mover stopped; enable it with
// [DB.SetMoverInterval].
const DefaultMoverInterval = time.Second

// DefaultMoverThreshold is the big-PDT entry count past which a mover
// pass rebuilds the stable image.
const DefaultMoverThreshold = 1 << 14

// MoverStats counts tuple-mover outcomes (see [DB.MoverStats]).
type MoverStats struct {
	// Passes counts completed MoveTuples passes (manual and ticked).
	Passes uint64 `json:"passes"`
	// Folds counts tail stacks folded into big PDTs.
	Folds uint64 `json:"folds"`
	// Rebuilds counts stable images rebuilt and swapped in.
	Rebuilds uint64 `json:"rebuilds"`
	// Retries counts installs abandoned because the table reorganized
	// between the off-line work and the install window.
	Retries uint64 `json:"retries"`
}

// MoverStats returns cumulative tuple-mover counters.
func (db *DB) MoverStats() MoverStats {
	db.moverMu.Lock()
	defer db.moverMu.Unlock()
	return db.moverStats
}

// SetMoverThreshold sets the big-PDT entry count that triggers a
// stable-image rebuild on the next mover pass; n <= 0 disables
// rebuilds (folds still run). Safe to call concurrently.
func (db *DB) SetMoverThreshold(n int) {
	db.moverMu.Lock()
	db.moverThreshold = n
	db.moverMu.Unlock()
}

// SetMoverFailpoint installs a test-only fault hook invoked at named
// stages of a mover pass ("fold:<table>", "persist:<table>",
// "swap:<table>"); a non-nil return aborts the pass at that point.
// Crash-safety tests use it to stop the mover between persisting a
// rebuilt image and swapping it in, then recover from the WAL. Pass nil
// to clear.
func (db *DB) SetMoverFailpoint(f func(stage string) error) {
	db.moverMu.Lock()
	db.moverFail = f
	db.moverMu.Unlock()
}

func (db *DB) failpoint(stage string) error {
	db.moverMu.Lock()
	f := db.moverFail
	db.moverMu.Unlock()
	if f == nil {
		return nil
	}
	return f(stage)
}

func (db *DB) moverBump(f func(*MoverStats)) {
	db.moverMu.Lock()
	f(&db.moverStats)
	db.moverMu.Unlock()
}

// SetMoverInterval restarts the background tuple mover with the given
// tick; d <= 0 stops it. It must not be called with db.mu held (it
// joins the mover goroutine, which takes db.mu briefly each pass).
// Safe to call concurrently with queries and DML.
func (db *DB) SetMoverInterval(d time.Duration) {
	db.moverMu.Lock()
	stop, done := db.moverStop, db.moverDone
	db.moverStop, db.moverDone = nil, nil
	db.moverMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	if d <= 0 {
		return
	}
	stop, done = make(chan struct{}), make(chan struct{})
	db.moverMu.Lock()
	db.moverStop, db.moverDone = stop, done
	db.moverMu.Unlock()
	go db.moverLoop(d, stop, done)
}

// stopMover halts the background mover if running (Close path).
func (db *DB) stopMover() { db.SetMoverInterval(0) }

func (db *DB) moverLoop(d time.Duration, stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(d)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			// A failing pass (I/O error, failpoint) leaves deltas in
			// place for the next tick; nothing is lost.
			_ = db.MoveTuples()
		}
	}
}

// MoveTuples runs one synchronous tuple-mover pass over every table:
// fold committed tail layers into the big PDT, then rebuild and swap
// the stable image where the big PDT has outgrown the threshold. The
// heavy work runs on pinned immutable state without any DB lock;
// installs take the write lock for a few pointer swaps. Tests drive the
// mover deterministically through this instead of the background tick.
func (db *DB) MoveTuples() error {
	for _, name := range db.cat.Names() {
		if err := db.moveTable(name); err != nil {
			return fmt.Errorf("vectorwise: move %s: %w", name, err)
		}
	}
	db.moverBump(func(s *MoverStats) { s.Passes++ })
	return nil
}

func (db *DB) moveTable(name string) error {
	// Phase 1: fold tail layers into the big PDT.
	pin, err := db.txm.Pin(name)
	if err != nil {
		return err
	}
	if len(pin.Tail) > 0 {
		if err := db.failpoint("fold:" + name); err != nil {
			return err
		}
		folded, err := pin.Combined()
		if err != nil {
			return err
		}
		db.mu.Lock()
		ok := db.txm.InstallFold(name, pin, folded)
		if ok {
			err = db.refreshLayers(name)
		}
		db.mu.Unlock()
		if err != nil {
			return err
		}
		if !ok {
			db.moverBump(func(s *MoverStats) { s.Retries++ })
			return nil // reorganized underneath us; next tick retries
		}
		db.moverBump(func(s *MoverStats) { s.Folds++ })
	}

	// Phase 2: rebuild the stable image when the big PDT is large.
	pin, err = db.txm.Pin(name)
	if err != nil {
		return err
	}
	db.moverMu.Lock()
	threshold := db.moverThreshold
	db.moverMu.Unlock()
	if threshold <= 0 || pin.Big.Len() < threshold {
		return nil
	}
	newStable, err := rebuildStable(pin)
	if err != nil {
		return err
	}
	// Stamp and persist the image before the swap. Crash anywhere in
	// here is safe: the WAL still holds every record, and the image's
	// watermark makes exactly the absorbed ones inert at recovery —
	// whether the on-disk file is still the old image (atomic rename
	// not done) or already the new one.
	newStable.Meta.AppliedLSN = pin.AppliedLSN()
	if err := db.failpoint("persist:" + name); err != nil {
		return err
	}
	if db.dir != "" {
		if err := newStable.Save(filepath.Join(db.dir, name+".vwt")); err != nil {
			return err
		}
	}
	if err := db.failpoint("swap:" + name); err != nil {
		return err
	}
	db.mu.Lock()
	ok := db.txm.InstallStable(name, pin, newStable)
	if ok {
		if err = db.cat.ReplaceTable(newStable); err == nil {
			err = db.refreshLayers(name)
		}
	}
	db.mu.Unlock()
	if err != nil {
		return err
	}
	if !ok {
		db.moverBump(func(s *MoverStats) { s.Retries++ })
		return nil
	}
	db.moverBump(func(s *MoverStats) { s.Rebuilds++ })
	return nil
}

// rebuildStable merges a pin's big PDT into a fresh columnar image.
// Pure off-line work on immutable inputs.
func rebuildStable(pin *txn.Pinned) (*storage.Table, error) {
	schema := pin.Stable.Schema()
	nb := storage.NewBuilder(pin.Stable.Meta.Name, schema, 0)
	if err := txn.MergeIntoBuilder(nb, pin.Stable, pin.Big); err != nil {
		return nil, err
	}
	return nb.Finish()
}
