// Streaming: shows the cursor result API — DB.QueryContext returns a
// Rows whose NextBatch hands out the engine's own vector batches, so a
// consumer computes over typed columnar slices with no per-row boxing,
// results of any size flow in O(vector) memory, and a context
// cancels the statement mid-flight. Compare with DB.Query, which drains
// the same pipeline into boxed rows.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"runtime"
	"time"

	vectorwise "vectorwise"
	"vectorwise/internal/tpchdb"
)

func main() {
	sf := 0.01
	fmt.Printf("loading TPC-H SF %g through the bulk-ingest path ...\n", sf)
	db := vectorwise.OpenMemory()
	st, err := tpchdb.Load(db, sf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows in %v\n\n", st.Rows, st.Elapsed.Round(time.Millisecond))

	const q = `SELECT l_extendedprice, l_discount FROM lineitem`

	// Collect-all: every row boxed at the result boundary.
	allocCollect := allocBytes(func() {
		start := time.Now()
		res, err := db.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		var revenue float64
		for _, row := range res.Rows {
			revenue += row[0].F64 * (1 - row[1].F64)
		}
		fmt.Printf("collect: %8d rows   revenue %.2f   %v\n",
			len(res.Rows), revenue, time.Since(start).Round(time.Microsecond))
	})

	// Streaming: the same pipeline consumed batch-at-a-time. The batch
	// vectors are the engine's typed arrays — the revenue loop below
	// runs over []float64 directly, and nothing is ever boxed.
	allocStream := allocBytes(func() {
		start := time.Now()
		rows, err := db.QueryContext(context.Background(), q)
		if err != nil {
			log.Fatal(err)
		}
		defer rows.Close()
		var revenue float64
		var n int
		for {
			b, err := rows.NextBatch()
			if err != nil {
				log.Fatal(err)
			}
			if b == nil {
				break
			}
			price, disc := b.Vecs[0].F64, b.Vecs[1].F64
			if b.Sel == nil {
				for i := 0; i < b.N; i++ {
					revenue += price[i] * (1 - disc[i])
				}
			} else {
				for _, i := range b.Sel[:b.N] {
					revenue += price[i] * (1 - disc[i])
				}
			}
			n += b.N
		}
		fmt.Printf("stream:  %8d rows   revenue %.2f   %v\n",
			n, revenue, time.Since(start).Round(time.Microsecond))
	})
	fmt.Printf("\nboxing overhead eliminated: %d B collected vs %d B streamed (%.0fx)\n\n",
		allocCollect, allocStream, float64(allocCollect)/float64(max(allocStream, 1)))

	// Row-at-a-time consumers use Next/Scan on the same cursor.
	rows, err := db.QueryContext(context.Background(),
		`SELECT l_returnflag, SUM(l_quantity) qty FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag`)
	if err != nil {
		log.Fatal(err)
	}
	for rows.Next() {
		var flag string
		var qty float64
		if err := rows.Scan(&flag, &qty); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("flag %s: qty %.0f\n", flag, qty)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}

	// Cancellation stops the statement between vector batches: this
	// full-table scan dies after one batch instead of running to the end.
	ctx, cancel := context.WithCancel(context.Background())
	cur, err := db.QueryContext(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	defer cur.Close()
	if _, err := cur.NextBatch(); err != nil {
		log.Fatal(err)
	}
	cancel()
	for {
		b, err := cur.NextBatch()
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Println("\ncanceled mid-scan: engine stopped at the next vector boundary")
			} else {
				log.Fatal(err)
			}
			break
		}
		if b == nil {
			break
		}
	}
}

// allocBytes reports heap bytes fn allocates (TotalAlloc delta).
func allocBytes(fn func()) uint64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}
