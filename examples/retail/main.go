// Retail analytics: the multi-table star-ish workload the paper's intro
// motivates — joins, grouped aggregation, CASE arithmetic and top-N, all
// through SQL on the vectorized engine.
package main

import (
	"fmt"
	"log"

	vectorwise "vectorwise"
)

func main() {
	db := vectorwise.OpenMemory()
	must := func(stmt string) {
		if _, err := db.Exec(stmt); err != nil {
			log.Fatalf("%s: %v", stmt, err)
		}
	}

	must(`CREATE TABLE stores (sid BIGINT, region VARCHAR)`)
	must(`CREATE TABLE products (pid BIGINT, category VARCHAR, list_price DOUBLE)`)
	must(`CREATE TABLE sales (sid BIGINT, pid BIGINT, qty BIGINT, price DOUBLE, day DATE)`)

	must(`INSERT INTO stores VALUES (1,'north'), (2,'north'), (3,'south')`)
	must(`INSERT INTO products VALUES
		(10,'coffee', 4.00), (11,'tea', 3.00), (12,'beans', 2.50), (13,'mugs', 8.00)`)

	// A month of synthetic sales.
	for d := 1; d <= 28; d++ {
		stmt := "INSERT INTO sales VALUES "
		for s := 1; s <= 3; s++ {
			for p := 10; p <= 13; p++ {
				if (d+s+p)%3 == 0 {
					continue
				}
				if stmt[len(stmt)-1] == ')' {
					stmt += ","
				}
				qty := (d*s+p)%5 + 1
				price := 2.5 + float64((p-10))*1.5
				stmt += fmt.Sprintf("(%d,%d,%d,%.2f,DATE '2011-04-%02d')", s, p, qty, price, d)
			}
		}
		must(stmt)
	}

	// Revenue by region and category, with a promo share.
	res, err := db.Query(`
		SELECT st.region, p.category,
		       SUM(sa.price * sa.qty) revenue,
		       SUM(CASE WHEN sa.qty >= 4 THEN sa.price * sa.qty ELSE 0.0 END) bulk_revenue,
		       COUNT(*) line_items
		FROM sales sa
		JOIN stores st ON sa.sid = st.sid
		JOIN products p ON sa.pid = p.pid
		WHERE sa.day BETWEEN DATE '2011-04-01' AND DATE '2011-04-21'
		GROUP BY st.region, p.category
		ORDER BY revenue DESC
		LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("region  category  revenue  bulk_rev  lines")
	for _, r := range res.Rows {
		fmt.Printf("%-7s %-9s %8.2f %9.2f %6s\n", r[0], r[1], r[2].F64, r[3].F64, r[4])
	}

	// Products never sold in the south (anti join).
	res, err = db.Query(`
		SELECT p.category FROM products p
		ANTI JOIN sales sa ON p.pid = sa.pid
		ORDER BY p.category`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nproducts with zero sales: %d\n", len(res.Rows))
}
