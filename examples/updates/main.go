// Updates and ACID: demonstrates the PDT-based transaction machinery —
// updates land in Positional Delta Trees (not in place), scans merge
// them on the fly, the WAL makes commits durable, recovery replays them,
// and checkpointing folds deltas back into stable storage.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	vectorwise "vectorwise"
)

func main() {
	dir, err := os.MkdirTemp("", "vw-updates-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dbdir := filepath.Join(dir, "db")

	// Session 1: create, load, update, delete — then "crash" (close).
	db, err := vectorwise.Open(dbdir)
	if err != nil {
		log.Fatal(err)
	}
	must := func(stmt string) int64 {
		n, err := db.Exec(stmt)
		if err != nil {
			log.Fatalf("%s: %v", stmt, err)
		}
		return n
	}
	must(`CREATE TABLE accounts (id BIGINT, owner VARCHAR, balance DOUBLE)`)
	must(`INSERT INTO accounts VALUES
		(1,'ada',100.0), (2,'bob',250.0), (3,'eve',75.0), (4,'sam',0.0)`)
	fmt.Println("updated:", must(`UPDATE accounts SET balance = balance + 50.0 WHERE balance < 100.0`))
	fmt.Println("deleted:", must(`DELETE FROM accounts WHERE owner = 'sam'`))
	db.Close()

	// Session 2: recovery replays the WAL over the stable tables.
	db, err = vectorwise.Open(dbdir)
	if err != nil {
		log.Fatal(err)
	}
	res, err := db.Query(`SELECT id, owner, balance FROM accounts ORDER BY id`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter recovery:")
	for _, r := range res.Rows {
		fmt.Printf("  %s %-5s %7.2f\n", r[0], r[1], r[2].F64)
	}

	// Checkpoint folds the PDTs into a fresh stable image and clears
	// the WAL; results are identical afterwards.
	if err := db.Checkpoint("accounts"); err != nil {
		log.Fatal(err)
	}
	res2, err := db.Query(`SELECT COUNT(*) FROM accounts`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrows after checkpoint:", res2.Rows[0][0])
	db.Close()
}
