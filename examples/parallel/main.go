// Parallel: shows the Volcano-style multi-core rewrite on a TPC-H
// workload through the public surface — the database is bulk-loaded with
// DB.LoadBatch, the same SQL text runs at increasing parallelism via
// DB.SetParallelism, and the table prints per-core speedup (paper §I-B).
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	vectorwise "vectorwise"
	"vectorwise/internal/tpch"
	"vectorwise/internal/tpchdb"
)

func main() {
	sf := 0.01
	fmt.Printf("loading TPC-H SF %g through the bulk-ingest path ...\n", sf)
	db := vectorwise.OpenMemory()
	st, err := tpchdb.Load(db, sf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows in %v\n", st.Rows, st.Elapsed.Round(time.Millisecond))

	q1, ok := tpch.FindSQL("Q1") // Q1: the scan-heavy aggregation
	if !ok {
		log.Fatal("Q1 missing from the SQL suite")
	}
	maxw := runtime.GOMAXPROCS(0)
	var serial time.Duration
	fmt.Printf("%-8s %12s %9s\n", "workers", "Q1 runtime", "speedup")
	for w := 1; w <= maxw; w *= 2 {
		db.SetParallelism(w)
		best := time.Duration(1 << 62)
		for rep := 0; rep < 5; rep++ {
			start := time.Now()
			if _, err := db.Query(q1.SQL); err != nil {
				log.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		if w == 1 {
			serial = best
		}
		fmt.Printf("%-8d %12v %8.2fx\n", w, best.Round(time.Microsecond),
			serial.Seconds()/best.Seconds())
	}
}
