// Parallel: shows the Volcano-style multi-core rewrite on a TPC-H
// workload — the same plan runs serially and with the Xchange-injecting
// parallelizer, printing per-core speedup (paper §I-B).
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"vectorwise/internal/tpch"
)

func main() {
	sf := 0.01
	fmt.Printf("generating TPC-H SF %g ...\n", sf)
	cat, err := tpch.Generate(sf, 0)
	if err != nil {
		log.Fatal(err)
	}

	q1 := tpch.Suite()[0] // Q1: the scan-heavy aggregation
	maxw := runtime.GOMAXPROCS(0)
	var serial time.Duration
	fmt.Printf("%-8s %12s %9s\n", "workers", "Q1 runtime", "speedup")
	for w := 1; w <= maxw; w *= 2 {
		best := time.Duration(1 << 62)
		for rep := 0; rep < 5; rep++ {
			_, d, err := tpch.RunQuery(cat, q1, tpch.RunOptions{
				Engine: tpch.EngineVectorized, Parallel: w,
			})
			if err != nil {
				log.Fatal(err)
			}
			if d < best {
				best = d
			}
		}
		if w == 1 {
			serial = best
		}
		fmt.Printf("%-8d %12v %8.2fx\n", w, best.Round(time.Microsecond), serial.Seconds()/best.Seconds())
	}
}
