// Quickstart: create a table, load rows, run an analytical query through
// the full stack (SQL → planner → rewriter → cross-compiler → vectorized
// engine).
package main

import (
	"fmt"
	"log"

	vectorwise "vectorwise"
)

func main() {
	db := vectorwise.OpenMemory()

	if _, err := db.Exec(`CREATE TABLE trips (
		city VARCHAR, distance_km DOUBLE, fare DOUBLE, day DATE)`); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO trips VALUES
		('amsterdam', 3.2, 12.50, DATE '2011-03-01'),
		('amsterdam', 8.9, 31.00, DATE '2011-03-01'),
		('rotterdam', 2.1,  9.75, DATE '2011-03-02'),
		('amsterdam', 1.2,  6.25, DATE '2011-03-02'),
		('rotterdam', 7.7, 28.40, DATE '2011-03-03')`); err != nil {
		log.Fatal(err)
	}

	res, err := db.Query(`
		SELECT city, COUNT(*) trips, SUM(fare) revenue, AVG(distance_km) avg_km
		FROM trips
		WHERE day BETWEEN DATE '2011-03-01' AND DATE '2011-03-02'
		GROUP BY city
		ORDER BY revenue DESC`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("city        trips  revenue  avg_km")
	for _, row := range res.Rows {
		fmt.Printf("%-10s %6s %8s %7.2f\n", row[0], row[1], row[2], row[3].F64)
	}

	plan, err := db.Explain(`SELECT city, SUM(fare) FROM trips GROUP BY city`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noptimized plan (note the parallel exchange):")
	fmt.Print(plan)
}
