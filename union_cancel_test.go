package vectorwise

import (
	"context"
	"errors"
	"testing"
)

// TestUnionQueryCancellationMidStream pins the ctxnext per-iteration
// invariant end to end for set operations: a UNION ALL runs through
// exchange producers whose emit loops poll the context every batch, so
// cancelling a partially consumed cursor stops the statement at the
// next vector boundary instead of draining both inputs, and the DB
// stays fully usable afterwards.
func TestUnionQueryCancellationMidStream(t *testing.T) {
	db := rowsTestDB(t, 30000)
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := db.QueryContext(ctx, `SELECT k FROM pts UNION ALL SELECT k FROM pts`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rows.NextBatch()
	if err != nil || b == nil {
		t.Fatalf("first batch: %v %v", b, err)
	}
	consumed := b.N
	cancel()
	for {
		b, err := rows.NextBatch()
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled mid-stream, got %v", err)
			}
			break
		}
		if b == nil {
			t.Fatal("union drained to completion despite cancellation")
		}
		consumed += b.N
	}
	if consumed >= 60000 {
		t.Fatalf("consumed all %d rows; cancellation did not interrupt the stream", consumed)
	}
	rows.Close()
	// The aborted cursor released its snapshot and lock: writes proceed.
	if _, err := db.Exec(`INSERT INTO pts VALUES (1, 1.0, 'x')`); err != nil {
		t.Fatal(err)
	}
}
