module vectorwise

go 1.24
