package vectorwise

// Bulk ingest: the public load path of the engine. The paper's product
// ships loads straight into compressed column storage rather than
// through the per-row transaction machinery, and this file reproduces
// that contract behind two entry points:
//
//   - [DB.CopyFrom] streams CSV text into a table;
//   - [DB.LoadBatch] appends complete column slices — the columnar fast
//     path that feeds storage.Builder directly, with no per-value boxing.
//
// Both rebuild the table's stable image chunk-at-a-time (each full row
// group picks its own compression codec and records min/max statistics;
// a clean table's existing groups are adopted byte-for-byte with no
// recompression), hold the DB write lock for exactly one epoch, refresh
// optimizer statistics, and commit atomically: until the new image is
// installed, the catalog, transaction state and WAL are untouched, so a
// load that fails mid-stream leaves no trace. Durability is
// checkpoint-fused — the new stable image (with any pre-load PDT deltas
// folded in) is persisted and the WAL reset at the load boundary, so
// the log sees the whole load as one logical record and recovery
// observes either the pre-load or the post-load table, never partial
// rows.

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"vectorwise/internal/catalog"
	"vectorwise/internal/storage"
	"vectorwise/internal/txn"
	"vectorwise/internal/vtypes"
)

// CopyOptions configure DB.CopyFrom.
type CopyOptions struct {
	// Comma is the field delimiter; 0 means ','.
	Comma rune
	// Header, when set, skips the first record (column headers).
	Header bool
	// Null is the field token read as SQL NULL in nullable columns; the
	// zero value treats empty fields there as NULL. Non-nullable columns
	// always parse the raw field.
	Null string
}

// CopyFrom bulk-loads CSV records from r into an existing table,
// returning the number of rows appended. Fields map positionally onto
// the table's columns: BIGINT and DOUBLE parse as decimal numbers, DATE
// as 'YYYY-MM-DD', BOOLEAN as true/false/t/f/1/0, and VARCHAR takes the
// field verbatim (use quoting for embedded delimiters or newlines, ""
// for embedded quotes). A malformed record — wrong arity, an
// unparseable value, or NULL in a non-nullable column — aborts the load
// with its line number, leaving the table, catalog and WAL exactly as
// they were.
//
// The stream is read and parsed before the DB write lock is taken, so a
// slow or large input never stalls concurrent queries; only the install
// of the finished image serializes with other statements.
func (db *DB) CopyFrom(table string, r io.Reader, opts CopyOptions) (int64, error) {
	// The catalog is internally synchronized, so this pre-lock schema
	// snapshot is safe; the install below re-checks it under the lock.
	ent, err := db.cat.Get(table)
	if err != nil {
		return 0, err
	}
	schema := ent.Table.Schema()
	rows, err := parseCSV(r, table, schema, opts)
	if err != nil {
		return 0, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	b, cur, err := db.bulkBuilderLocked(table)
	if err != nil {
		return 0, err
	}
	if !schemaEqual(cur, schema) {
		return 0, fmt.Errorf("vectorwise: copy %s: schema changed during load", table)
	}
	for i, row := range rows {
		if err := b.AppendRow(row); err != nil {
			return 0, fmt.Errorf("vectorwise: copy %s: row %d: %w", table, i+1, err)
		}
	}
	if err := db.installBulkLocked(table, b); err != nil {
		return 0, err
	}
	return int64(len(rows)), nil
}

// LoadBatch bulk-appends complete column slices to an existing table —
// []int64 for BIGINT and DATE columns, []float64 for DOUBLE, []string
// for VARCHAR, []bool for BOOLEAN — returning the number of rows
// appended. nulls may be nil (no NULLs), or hold a nil or row-length
// flag slice per column. This is the columnar fast path: values feed
// storage.Builder directly with no per-value boxing, so it is the
// preferred route for loaders that already hold columnar data (the
// TPC-H generator, ETL pipelines).
func (db *DB) LoadBatch(table string, cols []any, nulls [][]bool) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	b, _, err := db.bulkBuilderLocked(table)
	if err != nil {
		return 0, err
	}
	n, err := b.AppendColumns(cols, nulls)
	if err != nil {
		return 0, fmt.Errorf("vectorwise: load %s: %w", table, err)
	}
	if err := db.installBulkLocked(table, b); err != nil {
		return 0, err
	}
	return n, nil
}

// parseCSV converts the whole stream into boxed rows, with line-numbered
// errors. Runs outside the DB lock.
func parseCSV(r io.Reader, table string, schema *vtypes.Schema, opts CopyOptions) ([]vtypes.Row, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.FieldsPerRecord = schema.Len()
	cr.ReuseRecord = true
	line := 0
	if opts.Header {
		if _, err := cr.Read(); err != nil && err != io.EOF {
			return nil, fmt.Errorf("vectorwise: copy %s: %w", table, err)
		}
		line++
	}
	var rows []vtypes.Row
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return nil, fmt.Errorf("vectorwise: copy %s: %w", table, err)
		}
		line++
		row := make(vtypes.Row, schema.Len())
		for c := 0; c < schema.Len(); c++ {
			col := schema.Col(c)
			v, err := parseCSVField(rec[c], col, opts.Null)
			if err != nil {
				return nil, fmt.Errorf("vectorwise: copy %s: line %d, column %q: %w", table, line, col.Name, err)
			}
			row[c] = v
		}
		rows = append(rows, row)
	}
}

func schemaEqual(a, b *vtypes.Schema) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.Col(i) != b.Col(i) {
			return false
		}
	}
	return true
}

// bulkBuilderLocked starts a stable-image rebuild for table: a fresh
// storage.Builder pre-seeded with the table's currently visible rows.
// Caller holds the write lock.
func (db *DB) bulkBuilderLocked(table string) (*storage.Builder, *vtypes.Schema, error) {
	if _, err := db.cat.Get(table); err != nil {
		return nil, nil, err
	}
	master, stable, err := db.txm.MasterPDT(table)
	if err != nil {
		return nil, nil, err
	}
	schema := stable.Schema()
	b := storage.NewBuilder(table, schema, 0)
	if master.Empty() {
		// Clean table: adopt the existing compressed row groups
		// byte-for-byte — repeated appends stay O(bytes copied), with no
		// decompression or re-encoding of untouched data.
		if stable.Rows() > 0 {
			if err := b.AppendTable(stable); err != nil {
				return nil, nil, err
			}
		}
		return b, schema, nil
	}
	// Pending PDT deltas: fold them in through the same merge rebuild a
	// checkpoint performs, then append the new rows.
	if err := txn.MergeIntoBuilder(b, stable, master); err != nil {
		return nil, nil, err
	}
	return b, schema, nil
}

// installBulkLocked finishes a rebuild and publishes it: the new stable
// image replaces the table in one step (fresh empty master PDT, bumped
// schema epoch so cached plans re-resolve) and optimizer statistics are
// refreshed from the loaded data. Nothing before this call mutates
// shared state, so any earlier error aborts the load with no side
// effects. Durability then proceeds in crash-safe order:
//
//  1. persist the loaded table — its pre-load deltas were folded into
//     the new image, and the WAL resets below would otherwise hold
//     their only durable copy;
//  2. fold sibling tables' logged deltas into their own stable images
//     (each checkpoint persists its table — the reset-vs-persist window
//     inside a single checkpoint is the same one DB.Checkpoint has);
//  3. persist any remaining never-written table;
//  4. reset the log: the load is one logical durability event.
func (db *DB) installBulkLocked(table string, b *storage.Builder) error {
	t, err := b.Finish()
	if err != nil {
		return err
	}
	st, err := catalog.Analyze(t)
	if err != nil {
		return err
	}
	db.cat.Put(t)
	db.txm.Register(t)
	if err := db.refreshLayers(table); err != nil {
		return err
	}
	if err := db.cat.SetStats(table, st); err != nil {
		return err
	}
	if db.dir != "" {
		if err := db.persistTable(table); err != nil {
			return err
		}
	}
	persisted := map[string]bool{table: true}
	if db.log != nil || db.dir != "" {
		for _, name := range db.cat.Names() {
			if persisted[name] {
				continue
			}
			master, _, err := db.txm.MasterPDT(name)
			if err != nil {
				return err
			}
			if master.Empty() {
				continue
			}
			if err := db.checkpointLocked(name); err != nil {
				return err
			}
			persisted[name] = true
		}
	}
	if db.dir != "" {
		for _, name := range db.cat.Names() {
			if persisted[name] {
				continue
			}
			if err := db.persistTable(name); err != nil {
				return err
			}
		}
	}
	if db.log != nil {
		return db.log.Reset()
	}
	return nil
}

// parseCSVField converts one CSV field to a column value.
func parseCSVField(field string, col vtypes.Column, nullTok string) (vtypes.Value, error) {
	if col.Nullable && field == nullTok {
		return vtypes.NullValue(col.Kind), nil
	}
	switch col.Kind {
	case vtypes.KindI64:
		n, err := strconv.ParseInt(strings.TrimSpace(field), 10, 64)
		if err != nil {
			return vtypes.Value{}, fmt.Errorf("cannot parse %q as BIGINT", field)
		}
		return vtypes.I64Value(n), nil
	case vtypes.KindF64:
		f, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil {
			return vtypes.Value{}, fmt.Errorf("cannot parse %q as DOUBLE", field)
		}
		return vtypes.F64Value(f), nil
	case vtypes.KindDate:
		d, err := vtypes.ParseDate(strings.TrimSpace(field))
		if err != nil {
			return vtypes.Value{}, fmt.Errorf("cannot parse %q as DATE", field)
		}
		return vtypes.DateValue(d), nil
	case vtypes.KindBool:
		switch strings.ToLower(strings.TrimSpace(field)) {
		case "true", "t", "1":
			return vtypes.BoolValue(true), nil
		case "false", "f", "0":
			return vtypes.BoolValue(false), nil
		}
		return vtypes.Value{}, fmt.Errorf("cannot parse %q as BOOLEAN", field)
	default:
		return vtypes.StrValue(field), nil
	}
}
