package vectorwise

import (
	"path/filepath"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	db := OpenMemory()
	if _, err := db.Exec(`CREATE TABLE sales (region VARCHAR, amount DOUBLE, day DATE)`); err != nil {
		t.Fatal(err)
	}
	if n, err := db.Exec(`INSERT INTO sales VALUES
		('north', 10.5, DATE '2011-01-01'),
		('south', 20.0, DATE '2011-01-02'),
		('north', 5.25, DATE '2011-02-01')`); err != nil || n != 3 {
		t.Fatalf("insert: n=%d err=%v", n, err)
	}
	res, err := db.Query(`SELECT region, SUM(amount) AS total, COUNT(*) n
		FROM sales GROUP BY region ORDER BY region`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
	if res.Columns[1] != "total" {
		t.Fatalf("columns: %v", res.Columns)
	}
	if res.Rows[0][0].Str != "north" || res.Rows[0][1].F64 != 15.75 || res.Rows[0][2].I64 != 2 {
		t.Fatalf("north row wrong: %v", res.Rows[0])
	}
}

func TestUpdateDeleteThroughPDTs(t *testing.T) {
	db := OpenMemory()
	mustExec(t, db, `CREATE TABLE kv (k BIGINT, v VARCHAR)`)
	mustExec(t, db, `INSERT INTO kv VALUES (1,'a'), (2,'b'), (3,'c'), (4,'d')`)
	if n, err := db.Exec(`UPDATE kv SET v = 'patched' WHERE k = 2`); err != nil || n != 1 {
		t.Fatalf("update: %d %v", n, err)
	}
	if n, err := db.Exec(`DELETE FROM kv WHERE k > 2`); err != nil || n != 2 {
		t.Fatalf("delete: %d %v", n, err)
	}
	res, err := db.Query(`SELECT k, v FROM kv ORDER BY k`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[1][1].Str != "patched" {
		t.Fatalf("post-DML rows: %v", res.Rows)
	}
}

func TestJoinsThroughSQL(t *testing.T) {
	db := OpenMemory()
	mustExec(t, db, `CREATE TABLE dept (did BIGINT, dname VARCHAR)`)
	mustExec(t, db, `CREATE TABLE emp (eid BIGINT, ename VARCHAR, did BIGINT, sal DOUBLE)`)
	mustExec(t, db, `INSERT INTO dept VALUES (1,'eng'), (2,'ops')`)
	mustExec(t, db, `INSERT INTO emp VALUES (1,'ada',1,100), (2,'bob',1,80), (3,'eve',2,90), (4,'sam',9,10)`)

	res, err := db.Query(`SELECT d.dname, SUM(e.sal) total
		FROM emp e JOIN dept d ON e.did = d.did
		GROUP BY d.dname ORDER BY total DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Str != "eng" || res.Rows[0][1].F64 != 180 {
		t.Fatalf("join-agg: %v", res.Rows)
	}

	// Anti join: employees with no department.
	res, err = db.Query(`SELECT ename FROM emp e ANTI JOIN dept d ON e.did = d.did`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "sam" {
		t.Fatalf("anti join: %v", res.Rows)
	}

	// Left outer join null-pads.
	res, err = db.Query(`SELECT e.ename, d.dname FROM emp e LEFT JOIN dept d ON e.did = d.did ORDER BY e.eid`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 || !res.Rows[3][1].Null {
		t.Fatalf("left join: %v", res.Rows)
	}
}

func TestWherePushdownAndExplain(t *testing.T) {
	db := OpenMemory()
	mustExec(t, db, `CREATE TABLE a (x BIGINT)`)
	mustExec(t, db, `CREATE TABLE b (y BIGINT)`)
	mustExec(t, db, `INSERT INTO a VALUES (1),(2),(3)`)
	mustExec(t, db, `INSERT INTO b VALUES (2),(3),(4)`)
	plan, err := db.Explain(`SELECT a.x FROM a JOIN b ON a.x = b.y WHERE a.x > 1 AND b.y < 4`)
	if err != nil {
		t.Fatal(err)
	}
	// Both single-table predicates must push past the join all the way
	// into their scans' filters (the data-skipping rewrite).
	joinPos := indexOf(plan, "HashJoin")
	aPos := indexOf(plan, "Scan a cols=[0] filters=[(#0 > 1)]")
	bPos := indexOf(plan, "Scan b cols=[0] filters=[(#0 < 4)]")
	if joinPos < 0 || aPos < joinPos || bPos < joinPos {
		t.Fatalf("pushdown missing in plan:\n%s", plan)
	}
	res, err := db.Query(`SELECT a.x FROM a JOIN b ON a.x = b.y WHERE a.x > 1 AND b.y < 4 ORDER BY a.x`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].I64 != 2 || res.Rows[1][0].I64 != 3 {
		t.Fatalf("pushdown query: %v", res.Rows)
	}
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestSQLExpressions(t *testing.T) {
	db := OpenMemory()
	mustExec(t, db, `CREATE TABLE t (k BIGINT, s VARCHAR, d DATE, f DOUBLE)`)
	mustExec(t, db, `INSERT INTO t VALUES
		(1, 'promo box', DATE '1995-03-01', 2.0),
		(2, 'plain box', DATE '1996-07-15', 4.0),
		(3, 'promo bag', DATE '1995-11-30', 8.0)`)

	res, err := db.Query(`SELECT SUM(CASE WHEN s LIKE 'promo%' THEN f ELSE 0.0 END) p, SUM(f) tot FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].F64 != 10 || res.Rows[0][1].F64 != 14 {
		t.Fatalf("case/like: %v", res.Rows)
	}

	res, err = db.Query(`SELECT YEAR(d) y, COUNT(*) n FROM t GROUP BY YEAR(d) ORDER BY y`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].I64 != 1995 || res.Rows[0][1].I64 != 2 {
		t.Fatalf("year group: %v", res.Rows)
	}

	res, err = db.Query(`SELECT k FROM t WHERE d BETWEEN DATE '1995-01-01' AND DATE '1995-12-31' AND k IN (1, 3) ORDER BY k`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("between/in: %v", res.Rows)
	}

	res, err = db.Query(`SELECT k, f * 2 + 1 AS g FROM t WHERE NOT (k = 2) ORDER BY k DESC LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].F64 != 17 {
		t.Fatalf("arith/not/limit: %v", res.Rows)
	}
}

func TestNullHandlingSQL(t *testing.T) {
	db := OpenMemory()
	mustExec(t, db, `CREATE TABLE n (k BIGINT, v BIGINT NULL)`)
	mustExec(t, db, `INSERT INTO n VALUES (1, 10), (2, NULL), (3, 30)`)
	res, err := db.Query(`SELECT k FROM n WHERE v IS NULL`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I64 != 2 {
		t.Fatalf("is null: %v", res.Rows)
	}
	res, err = db.Query(`SELECT k FROM n WHERE v IS NOT NULL ORDER BY k`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("is not null: %v", res.Rows)
	}
}

func TestPersistenceAndWALRecovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE p (k BIGINT, v VARCHAR)`)
	mustExec(t, db, `INSERT INTO p VALUES (1,'one'), (2,'two')`)
	mustExec(t, db, `UPDATE p SET v = 'TWO' WHERE k = 2`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Query(`SELECT v FROM p ORDER BY k`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[1][0].Str != "TWO" {
		t.Fatalf("recovered rows: %v", res.Rows)
	}

	// Checkpoint flattens PDTs into the stable file and clears the WAL.
	if err := db2.Checkpoint("p"); err != nil {
		t.Fatal(err)
	}
	res, err = db2.Query(`SELECT v FROM p ORDER BY k`)
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("post-checkpoint: %v %v", res.Rows, err)
	}
}

func TestErrorPaths(t *testing.T) {
	db := OpenMemory()
	if _, err := db.Exec(`SELECT 1 FROM nope`); err == nil {
		t.Fatal("Exec of SELECT must error")
	}
	if _, err := db.Query(`DELETE FROM nope`); err == nil {
		t.Fatal("Query of DML must error")
	}
	if _, err := db.Query(`SELECT x FROM missing`); err == nil {
		t.Fatal("missing table must error")
	}
	mustExec(t, db, `CREATE TABLE e (x BIGINT)`)
	if _, err := db.Exec(`CREATE TABLE e (x BIGINT)`); err == nil {
		t.Fatal("duplicate table must error")
	}
	if _, err := db.Exec(`INSERT INTO e VALUES (1, 2)`); err == nil {
		t.Fatal("arity mismatch must error")
	}
	if _, err := db.Query(`SELECT nosuch FROM e`); err == nil {
		t.Fatal("unknown column must error")
	}
	if _, err := db.Query(`SELECT x, SUM(x) FROM e`); err == nil {
		t.Fatal("mixed agg/non-agg without GROUP BY must error")
	}
}

func mustExec(t *testing.T, db *DB, q string) {
	t.Helper()
	if _, err := db.Exec(q); err != nil {
		t.Fatalf("%s: %v", q, err)
	}
}
